package eval

import (
	"sqlsheet/internal/aggs"
	"sqlsheet/internal/types"
)

// AggBatch wraps one aggregate's batch accumulator (aggs.SumBatch & co.)
// behind a uniform grow/feed/unbox surface, shared by the executor's
// vectorized group-by and the spreadsheet engine's batch partition scan.
// Exactly one field is set, per the aggregate's name.
type AggBatch struct {
	sum   *aggs.SumBatch
	cnt   *aggs.CountBatch
	avg   *aggs.AvgBatch
	mm    *aggs.MinMaxBatch
	slope *aggs.SlopeBatch
	star  bool
}

// NewAggBatch builds the batch accumulator for the named aggregate. kinds
// are the argument vector kinds over the concrete image (nil for COUNT(*));
// MIN/MAX store their extreme in the argument's representation and SLOPE
// needs its (y, x) pair, so a kind list of the wrong shape — or an aggregate
// without a batch form — reports ok=false and the caller keeps the row path.
func NewAggBatch(name string, star bool, kinds []types.Kind) (AggBatch, bool) {
	switch name {
	case "sum":
		return AggBatch{sum: aggs.NewSumBatch()}, true
	case "count":
		return AggBatch{cnt: aggs.NewCountBatch(star), star: star}, true
	case "avg":
		return AggBatch{avg: aggs.NewAvgBatch()}, true
	case "min", "max":
		if len(kinds) != 1 {
			return AggBatch{}, false
		}
		return AggBatch{mm: aggs.NewMinMaxBatch(name == "min", kinds[0])}, true
	case "slope":
		if len(kinds) != 2 {
			return AggBatch{}, false
		}
		return AggBatch{slope: aggs.NewSlopeBatch()}, true
	}
	return AggBatch{}, false
}

// Grow ensures state exists for group ids < n.
func (st AggBatch) Grow(n int) {
	switch {
	case st.sum != nil:
		st.sum.Grow(n)
	case st.cnt != nil:
		st.cnt.Grow(n)
	case st.avg != nil:
		st.avg.Grow(n)
	case st.mm != nil:
		st.mm.Grow(n)
	case st.slope != nil:
		st.slope.Grow(n)
	}
}

// Feed dispatches one batch of argument vectors into the accumulator by
// vector kind; slot k of each vector belongs to group gids[k]. vecs is nil
// for COUNT(*) (every row counts). Kinds the row accumulator skips per value
// — non-numeric under SUM/AVG/SLOPE, any kind under an all-NULL vector —
// feed nothing, which leaves identical state.
func (st AggBatch) Feed(gids []int32, vecs []*ExprVec) {
	switch {
	case st.sum != nil:
		switch v := vecs[0]; v.Kind {
		case types.KindInt:
			st.sum.AddInts(gids, v.Ints, v.Nulls)
		case types.KindFloat:
			st.sum.AddFloats(gids, v.Floats, v.Nulls)
		}
	case st.cnt != nil:
		if st.star || vecs == nil {
			st.cnt.AddRows(gids)
		} else if v := vecs[0]; v.Kind != types.KindNull {
			st.cnt.AddNonNull(gids, v.Nulls)
		}
	case st.avg != nil:
		switch v := vecs[0]; v.Kind {
		case types.KindInt:
			st.avg.AddInts(gids, v.Ints, v.Nulls)
		case types.KindFloat:
			st.avg.AddFloats(gids, v.Floats, v.Nulls)
		}
	case st.mm != nil:
		switch v := vecs[0]; v.Kind {
		case types.KindInt, types.KindBool:
			st.mm.AddInts(gids, v.Ints, v.Nulls)
		case types.KindFloat:
			st.mm.AddFloats(gids, v.Floats, v.Nulls)
		case types.KindString:
			st.mm.AddStrs(gids, v.Strs, v.Nulls)
		}
	case st.slope != nil:
		y, x := vecs[0], vecs[1]
		if !numVecKind(y.Kind) || !numVecKind(x.Kind) {
			return
		}
		ys, ynulls := widenFloats(y)
		xs, xnulls := widenFloats(x)
		st.slope.AddPairs(gids, ys, xs, ynulls, xnulls)
	}
}

// Unbox materializes group g's state as the ordinary row accumulator.
func (st AggBatch) Unbox(g int) aggs.Agg {
	switch {
	case st.sum != nil:
		return st.sum.Unbox(g)
	case st.cnt != nil:
		return st.cnt.Unbox(g)
	case st.avg != nil:
		return st.avg.Unbox(g)
	case st.mm != nil:
		return st.mm.Unbox(g)
	case st.slope != nil:
		return st.slope.Unbox(g)
	}
	return nil
}

func numVecKind(k types.Kind) bool { return k == types.KindInt || k == types.KindFloat }

// widenFloats widens a numeric vector to float64 slots — the same
// float64(int64) machine conversion Value.Float() performs. NULL slots keep
// zero and are masked by the returned null slice.
func widenFloats(v *ExprVec) ([]float64, []bool) {
	if v.Kind == types.KindFloat {
		return v.Floats, v.Nulls
	}
	out := make([]float64, v.Len())
	for k := range out {
		if v.Nulls != nil && v.Nulls[k] {
			continue
		}
		out[k] = float64(v.Ints[k])
	}
	return out, v.Nulls
}
