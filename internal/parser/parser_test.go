package parser

import (
	"strings"
	"testing"

	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

func mustQuery(t *testing.T, sql string) *sqlast.SelectStmt {
	t.Helper()
	q, err := ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q
}

func body(t *testing.T, q *sqlast.SelectStmt) *sqlast.SelectBody {
	t.Helper()
	b, ok := q.Query.(*sqlast.SelectBody)
	if !ok {
		t.Fatalf("query is %T, want *SelectBody", q.Query)
	}
	return b
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT r, 't''v' FROM f -- comment\n WHERE x <= 1.5e2 /* c */ AND y != 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "t'v") {
		t.Errorf("string escape broken: %v", texts)
	}
	if !strings.Contains(joined, "<=") || !strings.Contains(joined, "<>") {
		t.Errorf("operators broken: %v", texts)
	}
	if !strings.Contains(joined, "1.5e2") {
		t.Errorf("float exponent broken: %v", texts)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("select 'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := lex("select ?"); err == nil {
		t.Error("unknown char must fail")
	}
	if _, err := lex(`select "unterminated`); err == nil {
		t.Error("unterminated quoted ident must fail")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	b := body(t, mustQuery(t, "SELECT r, p AS prod, s*2 total FROM f WHERE t = 2000"))
	if len(b.Items) != 3 {
		t.Fatalf("items = %d", len(b.Items))
	}
	if b.Items[1].Alias != "prod" || b.Items[2].Alias != "total" {
		t.Errorf("aliases = %q, %q", b.Items[1].Alias, b.Items[2].Alias)
	}
	if b.Where == nil {
		t.Error("missing WHERE")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(1 + (2 * 3))" {
		t.Errorf("precedence: %s", e)
	}
	e, err = ParseExpr("a OR b AND NOT c = 1")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(a OR (b AND NOT (c = 1)))" {
		t.Errorf("boolean precedence: %s", e)
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	q := mustQuery(t, `SELECT p, SUM(s) s FROM f GROUP BY p HAVING SUM(s) > 10 ORDER BY p DESC, s LIMIT 5`)
	b := body(t, q)
	if len(b.GroupBy) != 1 || b.Having == nil {
		t.Error("group/having broken")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order by broken: %+v", q.OrderBy)
	}
	if q.Limit == nil {
		t.Error("limit broken")
	}
}

func TestParseJoins(t *testing.T) {
	q := mustQuery(t, `SELECT * FROM f RIGHT OUTER JOIN ((SELECT DISTINCT r, p FROM f) CROSS JOIN (SELECT t FROM time_dt)) v ON (f.r = v.r AND f.p = v.p AND f.t = v.t)`)
	b := body(t, q)
	if len(b.From) != 1 {
		t.Fatalf("from = %d", len(b.From))
	}
	j, ok := b.From[0].(*sqlast.JoinRef)
	if !ok || j.Type != sqlast.JoinRight {
		t.Fatalf("expected right join, got %#v", b.From[0])
	}
	// The right side is the parenthesized cross-join tree.
	if _, ok := j.R.(*sqlast.JoinRef); !ok {
		t.Fatalf("right side = %T, want *JoinRef", j.R)
	}
}

func TestParseCommaJoin(t *testing.T) {
	b := body(t, mustQuery(t, "SELECT * FROM a, b c, d WHERE a.x = c.y"))
	if len(b.From) != 3 {
		t.Fatalf("from = %d", len(b.From))
	}
	tn := b.From[1].(*sqlast.TableName)
	if tn.Name != "b" || tn.Alias != "c" {
		t.Errorf("alias broken: %+v", tn)
	}
}

func TestParseUnionAndWith(t *testing.T) {
	q := mustQuery(t, `WITH ref AS (SELECT m FROM time_dt)
		SELECT m FROM ref UNION SELECT m_yago m FROM ref UNION ALL SELECT m_qago FROM ref`)
	if len(q.With) != 1 || q.With[0].Name != "ref" {
		t.Fatal("with broken")
	}
	u, ok := q.Query.(*sqlast.Union)
	if !ok || !u.All {
		t.Fatalf("outer union: %#v", q.Query)
	}
	if _, ok := u.L.(*sqlast.Union); !ok {
		t.Error("union must be left-associative")
	}
}

func TestParseSubqueries(t *testing.T) {
	b := body(t, mustQuery(t, `SELECT (SELECT MAX(s) FROM f) m FROM f WHERE p IN (SELECT p FROM d) AND EXISTS (SELECT 1 FROM g) AND t NOT IN (1, 2)`))
	if _, ok := b.Items[0].Expr.(*sqlast.ScalarSubquery); !ok {
		t.Error("scalar subquery broken")
	}
	if b.Where == nil {
		t.Fatal("where missing")
	}
}

func TestParseCaseBetweenLikeIsNull(t *testing.T) {
	e, err := ParseExpr(`CASE WHEN x BETWEEN 1 AND 3 THEN 'lo' WHEN x LIKE 'a%' THEN 'pat' ELSE 'hi' END`)
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*sqlast.Case)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case broken: %s", e)
	}
	e, err = ParseExpr("x IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := e.(*sqlast.IsNull); !ok || !n.Not {
		t.Errorf("is null broken: %s", e)
	}
	e, err = ParseExpr("CASE x WHEN 1 THEN 'a' END")
	if err != nil {
		t.Fatal(err)
	}
	if c := e.(*sqlast.Case); c.Operand == nil {
		t.Error("simple case operand missing")
	}
}

func TestParseCreateInsert(t *testing.T) {
	stmts, err := Parse(`
		CREATE TABLE f (t INT, r VARCHAR(10), p TEXT, s FLOAT, c NUMBER);
		INSERT INTO f (t, r, p, s, c) VALUES (2000, 'west', 'tv', 1.5, 2), (2001, 'east', 'vcr', NULL, 3);
		INSERT INTO g SELECT * FROM f;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	ct := stmts[0].(*sqlast.CreateTable)
	if len(ct.Cols) != 5 || ct.Cols[0].Kind != types.KindInt || ct.Cols[3].Kind != types.KindFloat {
		t.Errorf("create broken: %+v", ct)
	}
	ins := stmts[1].(*sqlast.InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Cols) != 5 {
		t.Errorf("insert broken: %+v", ins)
	}
	if stmts[2].(*sqlast.InsertStmt).Query == nil {
		t.Error("insert-select broken")
	}
}

// --- spreadsheet clause ---

func sheet(t *testing.T, sql string) *sqlast.SpreadsheetClause {
	t.Helper()
	sc := body(t, mustQuery(t, sql)).Spreadsheet
	if sc == nil {
		t.Fatalf("no spreadsheet clause in %q", sql)
	}
	return sc
}

func TestParseSpreadsheetBasic(t *testing.T) {
	sc := sheet(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		  s[p='dvd',t=2002] = s[p='dvd',t=2001]*1.6,
		  s[p='vcr',t=2002] = s[p='vcr',t=2000] + s[p='vcr',t=2001],
		  s['tv', 2002] = avg(s)['tv', 1992<t<2002]
		)`)
	if len(sc.PBY) != 1 || len(sc.DBY) != 2 || len(sc.MEA) != 1 {
		t.Fatalf("clause cols: %d %d %d", len(sc.PBY), len(sc.DBY), len(sc.MEA))
	}
	if len(sc.Rules) != 3 {
		t.Fatalf("rules = %d", len(sc.Rules))
	}
	f0 := sc.Rules[0]
	if f0.LHS.Measure != "s" || len(f0.LHS.Quals) != 2 {
		t.Fatalf("lhs broken: %s", f0.LHS)
	}
	if f0.LHS.Quals[0].Kind != sqlast.QualPoint || f0.LHS.Quals[0].Dim != "p" {
		t.Errorf("symbolic point broken: %+v", f0.LHS.Quals[0])
	}
	// Third rule: positional point + aggregate over chained range.
	f2 := sc.Rules[2]
	agg, ok := f2.RHS.(*sqlast.CellAgg)
	if !ok || agg.Func != "avg" {
		t.Fatalf("rhs agg broken: %s", f2.RHS)
	}
	r := agg.Quals[1]
	if r.Kind != sqlast.QualRange || r.Dim != "t" || r.LoIncl || r.HiIncl {
		t.Errorf("range qual broken: %+v", r)
	}
}

func TestParseSpreadsheetCvStarOrder(t *testing.T) {
	sc := sheet(t, `SELECT r,p,t,s FROM f SPREADSHEET DBY (r, p, t) MEA (s)
		( s['west',*,t>2001] = 1.2*s[cv(r),cv(p),t=cv(t)-1] )`)
	f := sc.Rules[0]
	if f.LHS.Quals[1].Kind != sqlast.QualStar {
		t.Error("star qual broken")
	}
	if f.LHS.Quals[2].Kind != sqlast.QualPred {
		t.Error("pred qual broken")
	}
	rhs := f.RHS.(*sqlast.Binary).R.(*sqlast.CellRef)
	if _, ok := rhs.Quals[0].Val.(*sqlast.CurrentV); !ok {
		t.Errorf("cv broken: %s", rhs)
	}
	// t=cv(t)-1: symbolic point with arithmetic on cv.
	q2 := rhs.Quals[2]
	if q2.Kind != sqlast.QualPoint || q2.Dim != "t" {
		t.Errorf("cv-arith point broken: %+v", q2)
	}
}

func TestParseSpreadsheetOrderByFormula(t *testing.T) {
	sc := sheet(t, `SELECT r,p,t,s FROM f SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s['vcr', t<2002] ORDER BY t ASC = avg(s)[cv(p),cv(t)-2<=t<cv(t)] )`)
	f := sc.Rules[0]
	if len(f.OrderBy) != 1 || f.OrderBy[0].Desc {
		t.Fatalf("formula order by broken: %+v", f.OrderBy)
	}
	agg := f.RHS.(*sqlast.CellAgg)
	r := agg.Quals[1]
	if r.Kind != sqlast.QualRange || !r.LoIncl || r.HiIncl {
		t.Errorf("chained cv range broken: %+v", r)
	}
}

func TestParseSpreadsheetUpsertLabelsModes(t *testing.T) {
	sc := sheet(t, `SELECT r, p, t, s FROM f SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		F1: UPDATE s['tv',2002] = slope(s,t)['tv',1992<=t<=2001]*s['tv',2001] + s['tv',2001],
		F2: UPDATE s['vcr', 2002] = s['vcr', 2000] + s['vcr', 2001],
		F4: UPSERT s['video', 2002] = s['tv',2002] + s['vcr',2002]
		)`)
	if sc.Rules[0].Label != "f1" || sc.Rules[0].Mode != sqlast.ModeUpdate {
		t.Errorf("F1 broken: %+v", sc.Rules[0])
	}
	if sc.Rules[2].Mode != sqlast.ModeUpsert {
		t.Errorf("F4 broken: %+v", sc.Rules[2])
	}
	slopeAgg := sc.Rules[0].RHS.(*sqlast.Binary).L.(*sqlast.Binary).L.(*sqlast.CellAgg)
	if slopeAgg.Func != "slope" || len(slopeAgg.Args) != 2 {
		t.Errorf("slope broken: %s", slopeAgg)
	}
	q := slopeAgg.Quals[1]
	if q.Kind != sqlast.QualRange || !q.LoIncl || !q.HiIncl {
		t.Errorf("slope range broken: %+v", q)
	}
}

func TestParseSpreadsheetForIn(t *testing.T) {
	sc := sheet(t, `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r, p) DBY (t) MEA (s, 0 as x)
		( UPSERT x[FOR t IN (SELECT t FROM time_dt)] = 0 )`)
	if len(sc.MEA) != 2 || sc.MEA[1].Alias != "x" {
		t.Fatalf("mea broken: %+v", sc.MEA)
	}
	q := sc.Rules[0].LHS.Quals[0]
	if q.Kind != sqlast.QualForIn || q.Dim != "t" || q.ForSub == nil {
		t.Fatalf("for-in broken: %+v", q)
	}
	sc = sheet(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( UPSERT s[FOR t IN (2000, 2001, 2002)] = 0 )`)
	if got := len(sc.Rules[0].LHS.Quals[0].ForVals); got != 3 {
		t.Errorf("for-in list = %d", got)
	}
}

func TestParseReferenceSpreadsheet(t *testing.T) {
	sc := sheet(t, `SELECT p, m, s, r_yago, r_qago FROM f
		SPREADSHEET
		  REFERENCE prior ON (SELECT m, m_yago, m_qago FROM time_dt)
		    DBY(m) MEA(m_yago, m_qago)
		  PBY(p) DBY (m) MEA (sum(s) s, r_yago, r_qago)
		(
		  F1: r_yago[*] = s[cv(m)] / s[m_yago[cv(m)]],
		  F2: r_qago[*] = s[cv(m)] / s[m_qago[cv(m)]]
		)`)
	if len(sc.Refs) != 1 || sc.Refs[0].Name != "prior" {
		t.Fatalf("reference broken: %+v", sc.Refs)
	}
	if len(sc.Refs[0].DBY) != 1 || len(sc.Refs[0].MEA) != 2 {
		t.Errorf("reference dby/mea broken")
	}
	if sc.MEA[0].Alias != "s" {
		t.Errorf("renamed measure broken: %+v", sc.MEA[0])
	}
	// Nested cell ref inside a qualifier.
	div := sc.Rules[0].RHS.(*sqlast.Binary)
	inner := div.R.(*sqlast.CellRef)
	if _, ok := inner.Quals[0].Val.(*sqlast.CellRef); !ok {
		t.Errorf("nested cell ref broken: %s", inner)
	}
}

func TestParseUnnamedReferenceAndRules(t *testing.T) {
	sc := sheet(t, `SELECT s, share_1, p, c, h, t FROM apb_cube
		SPREADSHEET
		  REFERENCE ON (SELECT p, parent1 FROM product_dt) DBY (p) MEA (parent1)
		  PBY (c,h,t) DBY (p) MEA (s, 0 share_1)
		RULES UPDATE
		( F1: share_1[*] = s[cv(p)] / s[parent1[cv(p)]] )`)
	if len(sc.Refs) != 1 || sc.Refs[0].Name != "" {
		t.Fatalf("unnamed ref broken: %+v", sc.Refs)
	}
	if sc.DefaultMode != sqlast.ModeUpdate {
		t.Error("RULES UPDATE must set default mode")
	}
	if sc.MEA[1].Alias != "share_1" {
		t.Errorf("implicit alias broken: %+v", sc.MEA[1])
	}
}

func TestParseIterateUntilPrevious(t *testing.T) {
	sc := sheet(t, `SELECT x, s FROM f SPREADSHEET DBY (x) MEA (s)
		ITERATE (10) UNTIL (PREVIOUS(s[1])-s[1] <= 1)
		( s[1] = s[1]/2 )`)
	if sc.Iterate == nil || sc.Iterate.N != 10 || sc.Iterate.Until == nil {
		t.Fatalf("iterate broken: %+v", sc.Iterate)
	}
	cmp := sc.Iterate.Until.(*sqlast.Binary)
	sub := cmp.L.(*sqlast.Binary)
	if _, ok := sub.L.(*sqlast.Previous); !ok {
		t.Errorf("previous broken: %s", sc.Iterate.Until)
	}
}

func TestParseOptionsSequentialIgnoreNav(t *testing.T) {
	sc := sheet(t, `SELECT r,p,t,s FROM f SPREADSHEET DBY(r,p,t) MEA(s) SEQUENTIAL ORDER IGNORE NAV
		( s['west','tv',2000] = 1 )`)
	if !sc.SeqOrder || !sc.IgnoreNav {
		t.Errorf("options broken: %+v", sc)
	}
	sc = sheet(t, `SELECT r,p,t,s FROM f MODEL DIMENSION BY (r,p,t) MEASURES (s) RULES AUTOMATIC ORDER
		( s['west','tv',2000] = 1 )`)
	if sc.SeqOrder {
		t.Error("automatic order broken")
	}
}

func TestParseIsPresent(t *testing.T) {
	sc := sheet(t, `SELECT t, s FROM f SPREADSHEET DBY (t) MEA (s)
		( s[2002] = CASE WHEN s[2001] IS PRESENT THEN s[2001] ELSE 0 END,
		  s[2003] = CASE WHEN s[2001] IS NOT PRESENT THEN 1 ELSE 2 END )`)
	c := sc.Rules[0].RHS.(*sqlast.Case)
	pr, ok := c.Whens[0].Cond.(*sqlast.Present)
	if !ok || pr.Not {
		t.Fatalf("is present broken: %s", c)
	}
	c2 := sc.Rules[1].RHS.(*sqlast.Case)
	if pr2 := c2.Whens[0].Cond.(*sqlast.Present); !pr2.Not {
		t.Error("is not present broken")
	}
}

func TestParseInQualAndNotEqual(t *testing.T) {
	sc := sheet(t, `SELECT r,p,t,s FROM f SPREADSHEET PBY(r) DBY(p, t) MEA(s) UPDATE
		( s[p in ('dvd','vcr'), 2002] = c[cv(p), 2002]*2,
		  s[p != 'bike', 2002] = avg(s)[cv(p), t<2001] )`)
	q := sc.Rules[0].LHS.Quals[0]
	if q.Kind != sqlast.QualPred {
		t.Fatalf("IN qual broken: %+v", q)
	}
	if _, ok := q.Pred.(*sqlast.InList); !ok {
		t.Errorf("IN pred type: %T", q.Pred)
	}
	q2 := sc.Rules[1].LHS.Quals[0]
	if q2.Kind != sqlast.QualPred {
		t.Errorf("!= qual broken: %+v", q2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM f WHERE",
		"SELECT * FROM f SPREADSHEET MEA (s) ( )",                       // missing DBY
		"SELECT * FROM f SPREADSHEET DBY (t) ( )",                       // missing MEA
		"SELECT * FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] )",          // missing =
		"SELECT * FROM f SPREADSHEET DBY (t) MEA (s) ( 1 = 2 )",         // LHS not cell
		"SELECT * FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = cv(1) )",  // cv arg
		"CREATE TABLE t (c BLOB)",                                       // bad type
		"INSERT INTO t SET x = 1",                                       // unsupported
		"SELECT CASE END FROM f",                                        // empty case
		"SELECT * FROM f SPREADSHEET DBY (t) MEA (s) ( s[1] = s[1] ) x", // trailing
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestParseDensificationANSIEquivalent(t *testing.T) {
	// The paper's ANSI equivalent of densification must parse too.
	mustQuery(t, `SELECT f.r, f.p, f.t, f.s
		FROM f RIGHT OUTER JOIN
		     ( (SELECT DISTINCT r, p FROM f)
		        CROSS JOIN
		        (SELECT t FROM time_dt)
		      ) v
		   ON (f.r = v.r AND f.p = v.p AND f.t = v.t)`)
}

func TestParseNestedSpreadsheetInFromClause(t *testing.T) {
	q := mustQuery(t, `SELECT * FROM
		(SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		 (
		 F1: s['dvd',2000]=s['dvd', 1999]*1.2,
		 F2: s['vcr',2000]=s['vcr',1998]+s['vcr',1999],
		 F3: s['tv', 2000]=avg(s)['tv', 1990<t<2000]
		 )
		) v
		WHERE p in ('dvd', 'vcr', 'video')`)
	b := body(t, q)
	sub, ok := b.From[0].(*sqlast.SubqueryRef)
	if !ok || sub.Alias != "v" {
		t.Fatalf("from subquery broken: %#v", b.From[0])
	}
	inner := sub.Sub.Query.(*sqlast.SelectBody)
	if inner.Spreadsheet == nil || len(inner.Spreadsheet.Rules) != 3 {
		t.Fatal("inner spreadsheet broken")
	}
}

func TestFormulaStringRoundtrip(t *testing.T) {
	sc := sheet(t, `SELECT r,p,t,s FROM f SPREADSHEET PBY(r) DBY(p,t) MEA(s)
		( F1: UPDATE s['vcr', t<2002] ORDER BY t ASC = avg(s)[cv(p), cv(t)-2<=t<cv(t)] )`)
	got := sc.Rules[0].String()
	for _, want := range []string{"f1:", "UPDATE", "ORDER BY t", "avg(s)[", "<=t<"} {
		if !strings.Contains(got, want) {
			t.Errorf("formula string %q missing %q", got, want)
		}
	}
}

func TestParseWindowFunctions(t *testing.T) {
	b := body(t, mustQuery(t, `SELECT p,
		rank() OVER (PARTITION BY r ORDER BY s DESC) rk,
		sum(s) OVER (ORDER BY t ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) mov,
		lag(s, 2, 0) OVER (ORDER BY t) l,
		count(*) OVER () n
		FROM f`))
	w := b.Items[1].Expr.(*sqlast.WindowFunc)
	if w.Func.Name != "rank" || len(w.PartitionBy) != 1 || len(w.OrderBy) != 1 || !w.OrderBy[0].Desc {
		t.Errorf("rank window: %s", w)
	}
	mov := b.Items[2].Expr.(*sqlast.WindowFunc)
	if mov.Frame == nil || mov.Frame.Start.Kind != sqlast.FramePreceding || mov.Frame.Start.N != 2 ||
		mov.Frame.End.Kind != sqlast.FrameCurrentRow {
		t.Errorf("frame: %+v", mov.Frame)
	}
	lagW := b.Items[3].Expr.(*sqlast.WindowFunc)
	if len(lagW.Func.Args) != 3 {
		t.Errorf("lag args: %s", lagW)
	}
	cnt := b.Items[4].Expr.(*sqlast.WindowFunc)
	if !cnt.Func.Star || len(cnt.PartitionBy) != 0 || len(cnt.OrderBy) != 0 {
		t.Errorf("count(*) over (): %s", cnt)
	}
}

func TestParseWindowFrameVariants(t *testing.T) {
	b := body(t, mustQuery(t, `SELECT
		sum(s) OVER (ORDER BY t ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING) a,
		sum(s) OVER (ORDER BY t ROWS BETWEEN CURRENT ROW AND 3 FOLLOWING) b
		FROM f`))
	a := b.Items[0].Expr.(*sqlast.WindowFunc)
	if a.Frame.Start.Kind != sqlast.FrameUnboundedPreceding || a.Frame.End.Kind != sqlast.FrameUnboundedFollowing {
		t.Errorf("unbounded frame: %+v", a.Frame)
	}
	bb := b.Items[1].Expr.(*sqlast.WindowFunc)
	if bb.Frame.Start.Kind != sqlast.FrameCurrentRow || bb.Frame.End.Kind != sqlast.FrameFollowing || bb.Frame.End.N != 3 {
		t.Errorf("following frame: %+v", bb.Frame)
	}
}

func TestParseWindowErrors(t *testing.T) {
	bad := []string{
		`SELECT sum(s) OVER (ROWS BETWEEN 1 PRECEDING AND) FROM f`,
		`SELECT sum(s) OVER (ROWS BETWEEN UNBOUNDED AND CURRENT ROW) FROM f`,
		`SELECT sum(s) OVER (ORDER BY t ROWS BETWEEN 1 AND 2) FROM f`,
		`SELECT sum(s) OVER FROM f`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected parse error for %q", sql)
		}
	}
}

func TestParseCreateViewRefreshDrop(t *testing.T) {
	stmts, err := Parse(`
		CREATE VIEW v AS SELECT a FROM t;
		CREATE MATERIALIZED VIEW mv AS SELECT a FROM t;
		REFRESH mv;
		REFRESH MATERIALIZED VIEW mv FULL;
		DROP VIEW v;
		DROP TABLE t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	cv := stmts[0].(*sqlast.CreateView)
	if cv.Name != "v" || cv.Materialized {
		t.Errorf("create view: %+v", cv)
	}
	mv := stmts[1].(*sqlast.CreateView)
	if !mv.Materialized {
		t.Errorf("materialized flag: %+v", mv)
	}
	r1 := stmts[2].(*sqlast.RefreshStmt)
	if r1.Name != "mv" || r1.Full {
		t.Errorf("refresh: %+v", r1)
	}
	r2 := stmts[3].(*sqlast.RefreshStmt)
	if !r2.Full {
		t.Errorf("refresh full: %+v", r2)
	}
	if stmts[4].(*sqlast.DropStmt).Name != "v" {
		t.Error("drop view")
	}
}
