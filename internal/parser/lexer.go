// Package parser implements a hand-written lexer and recursive-descent
// parser for the engine's SQL dialect, including the SPREADSHEET clause.
package parser

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkString
	tkOp    // operators and punctuation
	tkParam // unused placeholder for future bind variables
)

type token struct {
	kind tokenKind
	text string // identifiers lowercased; operators canonical
	pos  int    // byte offset for error messages
	// quoted marks a double-quoted identifier, which never matches a
	// keyword ("select" is a plain name).
	quoted bool
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src fully up front; the parser then walks the slice.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tkIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start})
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"':
			// Quoted identifier; "" escapes an embedded quote.
			l.pos++
			var id strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, posError(l.src, start, `"`, "unterminated quoted identifier")
				}
				if l.src[l.pos] == '"' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
						id.WriteByte('"')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				id.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tkIdent, text: strings.ToLower(id.String()), pos: start, quoted: true})
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			next := l.pos + 1
			if next < len(l.src) && (l.src[next] == '+' || l.src[next] == '-') {
				next++
			}
			if next < len(l.src) && isDigit(l.src[next]) {
				seenExp = true
				l.pos = next + 1
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	l.toks = append(l.toks, token{kind: tkNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tkString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return posError(l.src, start, "'", "unterminated string literal")
}

// two-character operators, longest match first.
var twoCharOps = []string{"<=", ">=", "<>", "!=", "||", ":="}

func (l *lexer) lexOp() error {
	start := l.pos
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, op := range twoCharOps {
			if two == op {
				if op == "!=" {
					op = "<>"
				}
				l.toks = append(l.toks, token{kind: tkOp, text: op, pos: start})
				l.pos += 2
				return nil
			}
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', '[', ']', ',', '.', ';', ':', '&':
		op := string(c)
		if c == '&' {
			op = "AND" // the paper writes & for AND in one listing
		}
		l.toks = append(l.toks, token{kind: tkOp, text: op, pos: start})
		l.pos++
		return nil
	}
	return posError(l.src, start, string(c), fmt.Sprintf("unexpected character %q", string(c)))
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '$' || c == '#' }
