package parser

import (
	"strconv"

	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// parseExpr parses at the lowest precedence level (OR).
func (p *Parser) parseExpr() (sqlast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (sqlast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") || p.acceptOp("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKw("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

var compareOps = map[string]bool{"=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *Parser) parseComparison() (sqlast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return p.parseComparisonRest(left)
}

// parseComparisonRest parses the comparison/IS/IN/BETWEEN/LIKE suffix.
func (p *Parser) parseComparisonRest(left sqlast.Expr) (sqlast.Expr, error) {
	t := p.peek()
	if t.kind == tkOp && compareOps[t.text] {
		op := p.next().text
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.Binary{Op: op, L: left, R: right}, nil
	}
	not := false
	if p.peekKw("not") && (p.peekAt(1).text == "in" || p.peekAt(1).text == "between" || p.peekAt(1).text == "like") {
		p.next()
		not = true
	}
	switch {
	case p.acceptKw("in"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.peekKw("select") || p.peekKw("with") {
			sub, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.InSubquery{X: left, Sub: sub, Not: not}, nil
		}
		var list []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.InList{X: left, List: list, Not: not}, nil
	case p.acceptKw("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.Between{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKw("like"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.Like{X: left, Pattern: pat, Not: not}, nil
	case p.peekKw("is"):
		p.next()
		isNot := p.acceptKw("not")
		switch {
		case p.acceptKw("null"):
			return &sqlast.IsNull{X: left, Not: isNot}, nil
		case p.inModel && p.acceptKw("present"):
			cell, ok := left.(*sqlast.CellRef)
			if !ok {
				return nil, p.errf("IS PRESENT requires a cell reference")
			}
			return &sqlast.Present{Cell: cell, Not: isNot}, nil
		}
		return nil, p.errf("expected NULL%s after IS", map[bool]string{true: " or PRESENT", false: ""}[p.inModel])
	}
	return left, nil
}

func (p *Parser) parseAdditive() (sqlast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekOp("+"), p.peekOp("-"), p.peekOp("||"):
			op := p.next().text
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Binary{Op: op, L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (sqlast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekOp("*"), p.peekOp("/"), p.peekOp("%"):
			op := p.next().text
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Binary{Op: op, L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseUnary() (sqlast.Expr, error) {
	switch {
	case p.acceptOp("-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals for cleaner ASTs.
		if lit, ok := x.(*sqlast.Literal); ok && lit.Val.IsNumeric() {
			v, err := types.Neg(lit.Val, types.KeepNav)
			if err == nil {
				return &sqlast.Literal{Val: v}, nil
			}
		}
		return &sqlast.Unary{Op: "-", X: x}, nil
	case p.acceptOp("+"):
		return p.parseUnary()
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary expression followed by optional cell-ref
// brackets (spreadsheet context only).
func (p *Parser) parsePostfix() (sqlast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.inModel && p.peekOp("[") {
		return p.parseCellSuffix(e)
	}
	return e, nil
}

func (p *Parser) parseCellSuffix(base sqlast.Expr) (sqlast.Expr, error) {
	quals, err := p.parseQualList()
	if err != nil {
		return nil, err
	}
	switch b := base.(type) {
	case *sqlast.ColumnRef:
		return &sqlast.CellRef{Sheet: b.Table, Measure: b.Name, Quals: quals}, nil
	case *sqlast.FuncCall:
		return &sqlast.CellAgg{Func: b.Name, Args: b.Args, Star: b.Star, Quals: quals}, nil
	}
	return nil, p.errf("cell reference must follow a measure name or aggregate call")
}

func (p *Parser) parsePrimary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.next()
		v, err := parseNumber(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &sqlast.Literal{Val: v}, nil
	case tkString:
		p.next()
		return &sqlast.Literal{Val: types.NewString(t.text)}, nil
	case tkOp:
		if t.text == "(" {
			if p.parenStartsQuery() {
				p.next()
				sub, err := p.parseSelectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &sqlast.ScalarSubquery{Sub: sub}, nil
			}
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tkIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}

func (p *Parser) parseIdentExpr() (sqlast.Expr, error) {
	tok := p.next()
	name := tok.text
	if tok.quoted {
		return p.parseNamedExpr(name)
	}
	switch name {
	case "null":
		return &sqlast.Literal{Val: types.Null}, nil
	case "true":
		return &sqlast.Literal{Val: types.NewBool(true)}, nil
	case "false":
		return &sqlast.Literal{Val: types.NewBool(false)}, nil
	case "case":
		return p.parseCase()
	case "exists":
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.Exists{Sub: sub}, nil
	}
	return p.parseNamedExpr(name)
}

// parseNamedExpr parses the function-call / qualified-name / column-ref
// continuation after an identifier.
func (p *Parser) parseNamedExpr(name string) (sqlast.Expr, error) {
	// Function call?
	if p.peekOp("(") {
		e, err := p.parseFuncCall(name)
		if err != nil {
			return nil, err
		}
		if fc, ok := e.(*sqlast.FuncCall); ok && p.peekKw("over") {
			return p.parseOverClause(fc)
		}
		return e, nil
	}
	// Qualified name t.c.
	if p.peekOp(".") && p.peekAt(1).kind == tkIdent {
		p.next()
		col := p.next().text
		if p.peekOp("(") {
			// No schema-qualified functions; treat as error.
			return nil, p.errf("unexpected '(' after qualified name %s.%s", name, col)
		}
		return &sqlast.ColumnRef{Table: name, Name: col}, nil
	}
	return &sqlast.ColumnRef{Name: name}, nil
}

func (p *Parser) parseFuncCall(name string) (sqlast.Expr, error) {
	p.next() // '('
	fc := &sqlast.FuncCall{Name: name}
	if p.acceptOp(")") {
		return p.finishFunc(fc)
	}
	if p.peekOp("*") && p.peekAt(1).kind == tkOp && p.peekAt(1).text == ")" {
		p.next()
		p.next()
		fc.Star = true
		return p.finishFunc(fc)
	}
	if p.acceptKw("distinct") {
		fc.Distinct = true
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, a)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return p.finishFunc(fc)
}

// finishFunc rewrites spreadsheet pseudo-functions into dedicated AST nodes.
func (p *Parser) finishFunc(fc *sqlast.FuncCall) (sqlast.Expr, error) {
	if !p.inModel {
		return fc, nil
	}
	switch fc.Name {
	case "cv", "currentv":
		if len(fc.Args) != 1 || fc.Star {
			return nil, p.errf("cv() takes exactly one dimension argument")
		}
		c, ok := fc.Args[0].(*sqlast.ColumnRef)
		if !ok || c.Table != "" {
			return nil, p.errf("cv() argument must be a dimension name")
		}
		return &sqlast.CurrentV{Dim: c.Name}, nil
	case "previous":
		if len(fc.Args) != 1 {
			return nil, p.errf("previous() takes exactly one cell argument")
		}
		cell, ok := fc.Args[0].(*sqlast.CellRef)
		if !ok {
			return nil, p.errf("previous() argument must be a cell reference")
		}
		return &sqlast.Previous{Cell: cell}, nil
	}
	return fc, nil
}

// parseOverClause parses the window specification after OVER.
func (p *Parser) parseOverClause(fc *sqlast.FuncCall) (sqlast.Expr, error) {
	p.next() // OVER
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	w := &sqlast.WindowFunc{Func: fc}
	if p.peekKw("partition") {
		p.next()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = append(w.PartitionBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.peekKw("order") {
		items, err := p.parseOrderBy()
		if err != nil {
			return nil, err
		}
		w.OrderBy = items
	}
	if p.acceptKw("rows") {
		if err := p.expectKw("between"); err != nil {
			return nil, err
		}
		start, err := p.parseFrameBound()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		end, err := p.parseFrameBound()
		if err != nil {
			return nil, err
		}
		w.Frame = &sqlast.WindowFrame{Start: start, End: end}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return w, nil
}

func (p *Parser) parseFrameBound() (sqlast.FrameBound, error) {
	switch {
	case p.acceptKw("unbounded"):
		switch {
		case p.acceptKw("preceding"):
			return sqlast.FrameBound{Kind: sqlast.FrameUnboundedPreceding}, nil
		case p.acceptKw("following"):
			return sqlast.FrameBound{Kind: sqlast.FrameUnboundedFollowing}, nil
		}
		return sqlast.FrameBound{}, p.errf("expected PRECEDING or FOLLOWING after UNBOUNDED")
	case p.peekKw("current"):
		p.next()
		if err := p.expectKw("row"); err != nil {
			return sqlast.FrameBound{}, err
		}
		return sqlast.FrameBound{Kind: sqlast.FrameCurrentRow}, nil
	}
	n, err := p.atoiLiteral()
	if err != nil {
		return sqlast.FrameBound{}, err
	}
	switch {
	case p.acceptKw("preceding"):
		return sqlast.FrameBound{Kind: sqlast.FramePreceding, N: n}, nil
	case p.acceptKw("following"):
		return sqlast.FrameBound{Kind: sqlast.FrameFollowing, N: n}, nil
	}
	return sqlast.FrameBound{}, p.errf("expected PRECEDING or FOLLOWING")
}

func (p *Parser) parseCase() (sqlast.Expr, error) {
	c := &sqlast.Case{}
	if !p.peekKw("when") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.acceptKw("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return c, nil
}

// atoiLiteral extracts a small positive integer literal (ITERATE(n)).
func (p *Parser) atoiLiteral() (int, error) {
	t := p.peek()
	if t.kind != tkNumber {
		return 0, p.errf("expected integer literal, found %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errf("expected nonnegative integer literal, found %q", t.text)
	}
	p.next()
	return n, nil
}
