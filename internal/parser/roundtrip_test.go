package parser

import (
	"testing"

	"sqlsheet/internal/sqlast"
)

// roundtripCorpus exercises every statement kind through parse → format →
// parse → format; the two rendered forms must be identical (formatting is
// canonical and parse-stable).
var roundtripCorpus = []string{
	`SELECT 1`,
	`SELECT DISTINCT a, b + 1 AS c FROM t WHERE a IN (1, 2) AND b IS NOT NULL`,
	`SELECT a FROM t ORDER BY a DESC LIMIT 3`,
	`SELECT a FROM t1 JOIN t2 ON t1.x = t2.y LEFT JOIN t3 ON t3.z = t1.x`,
	`SELECT a FROM (SELECT a FROM t) AS v, u WHERE v.a = u.b`,
	`WITH w AS (SELECT a FROM t) SELECT a FROM w UNION ALL SELECT b FROM u`,
	`SELECT COUNT(*), SUM(x) FROM t GROUP BY g HAVING COUNT(*) > 2`,
	`SELECT CASE WHEN x = 1 THEN 'a' ELSE 'b' END FROM t`,
	`SELECT (SELECT MAX(x) FROM u) FROM t WHERE EXISTS (SELECT 1 FROM u) AND a NOT IN (SELECT b FROM u)`,
	`SELECT rank() OVER (PARTITION BY g ORDER BY x DESC) FROM t`,
	`SELECT sum(x) OVER (ORDER BY t ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM t`,
	`CREATE TABLE t (a INT, b FLOAT, c TEXT, d BOOL)`,
	`INSERT INTO t (a, b) VALUES (1, 2.5), (NULL, 'x')`,
	`INSERT INTO t SELECT a, b FROM u`,
	`CREATE VIEW v AS SELECT a FROM t`,
	`CREATE MATERIALIZED VIEW mv AS SELECT a FROM t WHERE a > 0`,
	`REFRESH mv FULL`,
	`DROP TABLE t`,
	`DELETE FROM t WHERE a = 1 AND b LIKE 'x%'`,
	`UPDATE t SET a = a + 1, b = 'z' WHERE a IN (1, 2)`,
	`SELECT r, p, t, s FROM f
	   SPREADSHEET PBY (r) DBY (p, t) MEA (s) UPDATE
	   ( f1: s['dvd', 2002] = s['dvd', 2001] * 1.6,
	     upsert s['video', 2002] = avg(s)[cv(p), 1992 <= t < 2002] )`,
	`SELECT p, m, s FROM f
	   SPREADSHEET REFERENCE prior ON (SELECT m, y FROM d) DBY (m) MEA (y)
	   PBY (p) DBY (m) MEA (sum(s) AS s) IGNORE NAV ITERATE (5) UNTIL ((previous(s[1]) - s[1]) <= 1)
	   ( s[FOR m IN (SELECT m FROM d)] ORDER BY m DESC = y[cv(m)] )`,
	`SELECT t, s FROM f SPREADSHEET RETURN UPDATED ROWS DBY (t) MEA (s)
	   ( UPSERT s[FOR t FROM 1 TO 9 INCREMENT 2] = s[t = 1] )`,
}

func TestFormatRoundTrip(t *testing.T) {
	for _, src := range roundtripCorpus {
		stmts, err := Parse(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		for _, stmt := range stmts {
			once := sqlast.FormatStatement(stmt)
			again, err := Parse(once)
			if err != nil {
				t.Errorf("reparse of %q failed: %v", once, err)
				continue
			}
			if len(again) != 1 {
				t.Errorf("reparse of %q gave %d statements", once, len(again))
				continue
			}
			twice := sqlast.FormatStatement(again[0])
			if once != twice {
				t.Errorf("format not stable:\n 1: %s\n 2: %s", once, twice)
			}
		}
	}
}

// FuzzRoundTrip extends the property to arbitrary inputs that happen to
// parse.
func FuzzRoundTrip(f *testing.F) {
	for _, s := range roundtripCorpus {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return
		}
		for _, stmt := range stmts {
			once := sqlast.FormatStatement(stmt)
			again, err := Parse(once)
			if err != nil || len(again) != 1 {
				t.Fatalf("canonical form unparseable: %q (%v)", once, err)
			}
			twice := sqlast.FormatStatement(again[0])
			if once != twice {
				t.Fatalf("format unstable:\n 1: %s\n 2: %s", once, twice)
			}
		}
	})
}
