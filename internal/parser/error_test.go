package parser

import (
	"errors"
	"testing"
)

func TestStructuredParseError(t *testing.T) {
	_, err := Parse("SELECT a\nFROM t\nWHERE a <? 3")
	if err == nil {
		t.Fatal("expected parse error")
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("error is not *parser.Error: %T %v", err, err)
	}
	if pe.Line != 3 {
		t.Errorf("Line = %d, want 3", pe.Line)
	}
	if pe.Col != 10 {
		t.Errorf("Col = %d, want 10", pe.Col)
	}
	if pe.Token != "?" {
		t.Errorf("Token = %q, want %q", pe.Token, "?")
	}
	if pe.Offset != 25 {
		t.Errorf("Offset = %d, want 25", pe.Offset)
	}
}

func TestStructuredLexError(t *testing.T) {
	_, err := Parse("SELECT 'oops")
	if err == nil {
		t.Fatal("expected lex error")
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("error is not *parser.Error: %T %v", err, err)
	}
	if pe.Line != 1 || pe.Col != 8 {
		t.Errorf("position = %d:%d, want 1:8", pe.Line, pe.Col)
	}
	if pe.Token != "'" {
		t.Errorf("Token = %q, want %q", pe.Token, "'")
	}
}

func TestParseErrorAtEOF(t *testing.T) {
	_, err := Parse("SELECT a FROM")
	if err == nil {
		t.Fatal("expected parse error")
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("error is not *parser.Error: %T %v", err, err)
	}
	if pe.Token != "" {
		t.Errorf("Token at EOF = %q, want empty", pe.Token)
	}
}
