package parser

import (
	"math/rand"
	"testing"
)

// corpus holds representative statements whose mutations must never panic
// the parser.
var corpus = []string{
	`SELECT r, p, t, s FROM f SPREADSHEET PBY(r) DBY (p, t) MEA (s)
	 ( s['dvd',2002] = avg(s)['dvd', 1992<t<2002] * 1.6 )`,
	`SELECT * FROM (SELECT a, b FROM t WHERE a IN (SELECT x FROM u)) v
	 WHERE b BETWEEN 1 AND 2 ORDER BY 1 DESC LIMIT 3`,
	`WITH w AS (SELECT 1 a) SELECT a FROM w UNION ALL SELECT 2`,
	`INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, CASE WHEN 1=1 THEN 'z' END)`,
	`CREATE TABLE t (a INT, b VARCHAR(10), c NUMBER)`,
	`SELECT p, m FROM f MODEL REFERENCE r ON (SELECT m, y FROM d) DBY(m) MEA(y)
	 DIMENSION BY (m) MEASURES (s) ITERATE (5) UNTIL (previous(s[1]) - s[1] <= 0)
	 ( UPSERT s[FOR m FROM 1 TO 10 INCREMENT 3] = y[cv(m)] )`,
}

// TestParserNeverPanics truncates and mutates the corpus aggressively; the
// parser must return (possibly an error) without panicking.
func TestParserNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	rng := rand.New(rand.NewSource(7))
	mutants := 0
	for _, src := range corpus {
		// Every prefix.
		for i := 0; i <= len(src); i++ {
			_, _ = Parse(src[:i])
			mutants++
		}
		// Random byte substitutions.
		for k := 0; k < 300; k++ {
			b := []byte(src)
			for j := 0; j < 1+rng.Intn(3); j++ {
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			}
			_, _ = Parse(string(b))
			mutants++
		}
		// Random token deletions (split on spaces).
		for k := 0; k < 100; k++ {
			b := []byte(src)
			cut := rng.Intn(len(b) - 1)
			_, _ = Parse(string(b[:cut]) + string(b[cut+1:]))
			mutants++
		}
	}
	if mutants < 1000 {
		t.Fatalf("only %d mutants exercised", mutants)
	}
}

// TestDeepNestingNoOverflow guards the recursive-descent parser against
// pathological nesting.
func TestDeepNestingNoOverflow(t *testing.T) {
	depth := 2000
	expr := ""
	for i := 0; i < depth; i++ {
		expr += "("
	}
	expr += "1"
	for i := 0; i < depth; i++ {
		expr += ")"
	}
	if _, err := ParseExpr(expr); err != nil {
		t.Fatalf("deep parens: %v", err)
	}
}
