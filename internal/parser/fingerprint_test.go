package parser

import "testing"

func fp(t *testing.T, sql string) uint64 {
	t.Helper()
	h, err := Fingerprint(sql)
	if err != nil {
		t.Fatalf("Fingerprint(%q): %v", sql, err)
	}
	return h
}

func fpShape(t *testing.T, sql string) uint64 {
	t.Helper()
	h, err := FingerprintShape(sql)
	if err != nil {
		t.Fatalf("FingerprintShape(%q): %v", sql, err)
	}
	return h
}

func TestFingerprintInsensitivity(t *testing.T) {
	base := fp(t, `SELECT r, p, SUM(s) FROM f WHERE t > 1999 GROUP BY r, p`)
	same := []string{
		"select r,p,sum(s) from f where t>1999 group by r,p",
		"SeLeCt R, P, Sum(S)\n\tFROM F\n\tWHERE T > 1999\n\tGROUP BY R, P",
		"SELECT r, p, SUM(s) FROM f WHERE t > 1999 GROUP BY r, p;",
		"SELECT r, p, SUM(s) FROM f WHERE t > 1999 GROUP BY r, p ; ;",
		"SELECT r, p, SUM(s) -- projection\nFROM f WHERE t > 1999 GROUP BY r, p",
	}
	for _, s := range same {
		if got := fp(t, s); got != base {
			t.Errorf("fingerprint of %q = %#x, want %#x (same as canonical)", s, got, base)
		}
	}
	diff := []string{
		"SELECT r, p, SUM(s) FROM f WHERE t > 2000 GROUP BY r, p",  // literal
		"SELECT r, p, SUM(s) FROM f WHERE t >= 1999 GROUP BY r, p", // operator
		"SELECT r, p, MAX(s) FROM f WHERE t > 1999 GROUP BY r, p",  // identifier
		"SELECT r, p, SUM(s) FROM f GROUP BY r, p",                 // shape
	}
	for _, s := range diff {
		if got := fp(t, s); got == base {
			t.Errorf("fingerprint of %q collided with the canonical query", s)
		}
	}
}

// Token-kind and separator discipline: a string literal must not collide with
// an identifier of the same spelling, a quoted identifier must not collide
// with the keyword it spells, and adjacent tokens must not re-associate.
func TestFingerprintTokenKinds(t *testing.T) {
	pairs := [][2]string{
		{`SELECT 'a' FROM f`, `SELECT a FROM f`},
		{`SELECT "select" FROM f`, `SELECT select FROM f`},
		{`SELECT ab FROM f`, `SELECT a b FROM f`},
		{`SELECT 1, 2 FROM f`, `SELECT 12 FROM f`},
	}
	for _, p := range pairs {
		a, errA := Fingerprint(p[0])
		b, errB := Fingerprint(p[1])
		if errA != nil || errB != nil {
			// Some variants may not parse, but they must still lex; both do.
			t.Fatalf("lex error: %v / %v", errA, errB)
		}
		if a == b {
			t.Errorf("fingerprints of %q and %q collided (%#x)", p[0], p[1], a)
		}
	}
}

func TestFingerprintShape(t *testing.T) {
	a := fpShape(t, `SELECT r FROM f WHERE t > 1999 AND p = 'dvd'`)
	b := fpShape(t, `SELECT r FROM f WHERE t > 2005 AND p = 'vcr'`)
	if a != b {
		t.Errorf("shape fingerprints differ across literal-only change: %#x vs %#x", a, b)
	}
	c := fpShape(t, `SELECT r FROM f WHERE t > 1999 AND q = 'dvd'`)
	if a == c {
		t.Error("shape fingerprint collided across an identifier change")
	}
	// Exact fingerprints of the literal-varied pair must differ.
	if fp(t, `SELECT r FROM f WHERE t > 1999 AND p = 'dvd'`) ==
		fp(t, `SELECT r FROM f WHERE t > 2005 AND p = 'vcr'`) {
		t.Error("exact fingerprint collapsed literals; only FingerprintShape should")
	}
}

func TestFingerprintLexError(t *testing.T) {
	if _, err := Fingerprint(`SELECT 'unterminated`); err == nil {
		t.Error("expected lex error for unterminated string")
	}
}
