package parser

import "fmt"

// Error is a structured parse or lex error. Line and Col are 1-based and
// computed from the byte Offset into the original statement text; Token is
// the offending token's text ("" at end of input). Callers that transport
// errors — the serving layer in particular — can extract the position and
// token with errors.As instead of re-parsing the rendered message.
type Error struct {
	Line   int
	Col    int
	Offset int
	Token  string
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// posError builds an *Error for the given byte offset into src.
func posError(src string, offset int, token string, msg string) *Error {
	line, col := 1, 1
	for i := 0; i < offset && i < len(src); i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &Error{Line: line, Col: col, Offset: offset, Token: token, Msg: msg}
}
