package parser

import (
	"sqlsheet/internal/sqlast"
)

// parseSpreadsheetClause parses the clause introduced by SPREADSHEET (or its
// later Oracle spelling, MODEL).
func (p *Parser) parseSpreadsheetClause() (*sqlast.SpreadsheetClause, error) {
	p.next() // SPREADSHEET | MODEL
	sc := &sqlast.SpreadsheetClause{DefaultMode: sqlast.ModeUpsert}

	// RETURN UPDATED|ALL ROWS may precede the reference sheets.
	if err := p.parseReturnRows(sc); err != nil {
		return nil, err
	}

	for p.peekKw("reference") {
		ref, err := p.parseReference()
		if err != nil {
			return nil, err
		}
		sc.Refs = append(sc.Refs, ref)
	}

	// Main PBY/DBY/MEA.
	if p.peekKw("pby") || p.peekKw("partition") {
		cols, err := p.parseColsClause("pby", "partition")
		if err != nil {
			return nil, err
		}
		sc.PBY = cols
	}
	dby, err := p.parseColsClause("dby", "dimension")
	if err != nil {
		return nil, err
	}
	if dby == nil {
		return nil, p.errf("spreadsheet clause requires DBY (...)")
	}
	sc.DBY = dby
	mea, err := p.parseMeaClause()
	if err != nil {
		return nil, err
	}
	if mea == nil {
		return nil, p.errf("spreadsheet clause requires MEA (...)")
	}
	sc.MEA = mea

	// Processing options may appear before and/or after the RULES keyword.
	if err := p.parseModelOptions(sc); err != nil {
		return nil, err
	}
	p.acceptKw("rules")
	if err := p.parseModelOptions(sc); err != nil {
		return nil, err
	}

	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if !p.peekOp(")") {
		for {
			f, err := p.parseFormula()
			if err != nil {
				return nil, err
			}
			sc.Rules = append(sc.Rules, f)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return sc, nil
}

// parseReturnRows parses the optional RETURN UPDATED|ALL ROWS option.
func (p *Parser) parseReturnRows(sc *sqlast.SpreadsheetClause) error {
	if !p.acceptKw("return") {
		return nil
	}
	switch {
	case p.acceptKw("updated"):
		sc.ReturnUpdated = true
	case p.acceptKw("all"):
		sc.ReturnUpdated = false
	default:
		return p.errf("expected UPDATED or ALL after RETURN")
	}
	return p.expectKw("rows")
}

func (p *Parser) parseModelOptions(sc *sqlast.SpreadsheetClause) error {
	for {
		switch {
		case p.peekKw("return"):
			if err := p.parseReturnRows(sc); err != nil {
				return err
			}
		case p.acceptKw("update"):
			sc.DefaultMode = sqlast.ModeUpdate
		case p.acceptKw("upsert"):
			sc.DefaultMode = sqlast.ModeUpsert
		case p.peekKw("sequential"):
			p.next()
			if err := p.expectKw("order"); err != nil {
				return err
			}
			sc.SeqOrder = true
		case p.peekKw("automatic"):
			p.next()
			if err := p.expectKw("order"); err != nil {
				return err
			}
			sc.SeqOrder = false
		case p.peekKw("ignore"):
			p.next()
			if err := p.expectKw("nav"); err != nil {
				return err
			}
			sc.IgnoreNav = true
		case p.peekKw("keep"):
			p.next()
			if err := p.expectKw("nav"); err != nil {
				return err
			}
			sc.IgnoreNav = false
		case p.peekKw("iterate"):
			p.next()
			if err := p.expectOp("("); err != nil {
				return err
			}
			n, err := p.atoiLiteral()
			if err != nil {
				return err
			}
			if err := p.expectOp(")"); err != nil {
				return err
			}
			it := &sqlast.IterateOpt{N: n}
			if p.acceptKw("until") {
				if err := p.expectOp("("); err != nil {
					return err
				}
				save := p.inModel
				p.inModel = true
				cond, err := p.parseExpr()
				p.inModel = save
				if err != nil {
					return err
				}
				if err := p.expectOp(")"); err != nil {
					return err
				}
				it.Until = cond
			}
			sc.Iterate = it
		default:
			return nil
		}
	}
}

func (p *Parser) parseReference() (*sqlast.RefSheet, error) {
	p.next() // REFERENCE
	ref := &sqlast.RefSheet{}
	if p.peek().kind == tkIdent && !p.peekKw("on") {
		ref.Name = p.next().text
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	q, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	ref.Query = q
	dby, err := p.parseColsClause("dby", "dimension")
	if err != nil {
		return nil, err
	}
	if dby == nil {
		return nil, p.errf("reference spreadsheet requires DBY (...)")
	}
	ref.DBY = dby
	mea, err := p.parseMeaClause()
	if err != nil {
		return nil, err
	}
	if mea == nil {
		return nil, p.errf("reference spreadsheet requires MEA (...)")
	}
	ref.MEA = mea
	return ref, nil
}

// parseColsClause parses "PBY (a, b)" / "PARTITION BY (a, b)" style clauses.
// Returns nil if neither keyword is present.
func (p *Parser) parseColsClause(short, long string) ([]sqlast.Expr, error) {
	switch {
	case p.acceptKw(short):
	case p.peekKw(long):
		p.next()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
	default:
		return nil, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []sqlast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cols = append(cols, e)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *Parser) parseMeaClause() ([]sqlast.MeaItem, error) {
	if !p.acceptKw("mea") && !p.acceptKw("measures") {
		return nil, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var items []sqlast.MeaItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := sqlast.MeaItem{Expr: e}
		if p.acceptKw("as") {
			a, err := p.parseIdent("measure alias")
			if err != nil {
				return nil, err
			}
			item.Alias = a
		} else if p.peekAliasable() {
			item.Alias = p.next().text
		}
		items = append(items, item)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *Parser) parseFormula() (*sqlast.Formula, error) {
	f := &sqlast.Formula{}
	// Optional label: ident ':'.
	if p.peek().kind == tkIdent && p.peekAt(1).kind == tkOp && p.peekAt(1).text == ":" &&
		!p.peekKw("update") && !p.peekKw("upsert") {
		f.Label = p.next().text
		p.next() // ':'
	}
	switch {
	case p.acceptKw("update"):
		f.Mode = sqlast.ModeUpdate
	case p.acceptKw("upsert"):
		f.Mode = sqlast.ModeUpsert
	}
	save := p.inModel
	p.inModel = true
	defer func() { p.inModel = save }()

	lhs, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	cell, ok := lhs.(*sqlast.CellRef)
	if !ok {
		return nil, p.errf("formula left side must be a cell reference, got %s", lhs)
	}
	f.LHS = cell
	if p.peekKw("order") {
		// Formula-level ORDER BY items parse at additive precedence so the
		// "=" that separates the left and right sides is not consumed as a
		// comparison.
		p.next()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.acceptKw("desc") {
				item.Desc = true
			} else {
				p.acceptKw("asc")
			}
			f.OrderBy = append(f.OrderBy, item)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	f.RHS = rhs
	return f, nil
}

// parseQualList parses "[q, q, ...]" after a measure or aggregate.
func (p *Parser) parseQualList() ([]sqlast.DimQual, error) {
	if err := p.expectOp("["); err != nil {
		return nil, err
	}
	var quals []sqlast.DimQual
	for {
		q, err := p.parseQual()
		if err != nil {
			return nil, err
		}
		quals = append(quals, q)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp("]"); err != nil {
		return nil, err
	}
	return quals, nil
}

func (p *Parser) parseQual() (sqlast.DimQual, error) {
	if p.peekOp("*") {
		p.next()
		return sqlast.DimQual{Kind: sqlast.QualStar}, nil
	}
	if p.acceptKw("for") {
		return p.parseForQual()
	}
	return p.parseQualExpr()
}

func (p *Parser) parseForQual() (sqlast.DimQual, error) {
	var q sqlast.DimQual
	q.Kind = sqlast.QualForIn
	dim, err := p.parseIdent("dimension name")
	if err != nil {
		return q, err
	}
	q.Dim = dim
	if p.acceptKw("from") {
		// FOR dim FROM lo TO hi [INCREMENT step].
		lo, err := p.parseAdditive()
		if err != nil {
			return q, err
		}
		if err := p.expectKw("to"); err != nil {
			return q, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return q, err
		}
		q.ForFrom, q.ForTo = lo, hi
		if p.acceptKw("increment") {
			step, err := p.parseAdditive()
			if err != nil {
				return q, err
			}
			q.ForStep = step
		}
		return q, nil
	}
	if err := p.expectKw("in"); err != nil {
		return q, err
	}
	if err := p.expectOp("("); err != nil {
		return q, err
	}
	if p.peekKw("select") || p.peekKw("with") {
		sub, err := p.parseSelectStmt()
		if err != nil {
			return q, err
		}
		q.ForSub = sub
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return q, err
			}
			q.ForVals = append(q.ForVals, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return q, err
	}
	return q, nil
}

var rangeOps = map[string]bool{"<": true, "<=": true}
var rangeOpsDesc = map[string]bool{">": true, ">=": true}

// parseQualExpr parses one positional qualifier expression, supporting the
// chained-comparison range form "lo <= dim < hi" (and its > mirror).
func (p *Parser) parseQualExpr() (sqlast.DimQual, error) {
	var q sqlast.DimQual
	e1, err := p.parseAdditive()
	if err != nil {
		return q, err
	}
	t := p.peek()
	if t.kind == tkOp && compareOps[t.text] {
		op1 := p.next().text
		e2, err := p.parseAdditive()
		if err != nil {
			return q, err
		}
		t2 := p.peek()
		if t2.kind == tkOp && ((rangeOps[op1] && rangeOps[t2.text]) || (rangeOpsDesc[op1] && rangeOpsDesc[t2.text])) {
			op2 := p.next().text
			e3, err := p.parseAdditive()
			if err != nil {
				return q, err
			}
			mid, ok := e2.(*sqlast.ColumnRef)
			if !ok || mid.Table != "" {
				return q, p.errf("middle term of a chained range must be a dimension name")
			}
			q.Kind = sqlast.QualRange
			q.Dim = mid.Name
			if rangeOps[op1] {
				q.Lo, q.Hi = e1, e3
				q.LoIncl, q.HiIncl = op1 == "<=", op2 == "<="
			} else {
				q.Lo, q.Hi = e3, e1
				q.LoIncl, q.HiIncl = op2 == ">=", op1 == ">="
			}
			return q, nil
		}
		// Plain comparison. "dim = e" with a bare column left side becomes a
		// symbolic point; anything else is a predicate qualifier.
		if op1 == "=" {
			if c, ok := e1.(*sqlast.ColumnRef); ok && c.Table == "" {
				q.Kind = sqlast.QualPoint
				q.Dim = c.Name
				q.Val = e2
				return q, nil
			}
		}
		q.Kind = sqlast.QualPred
		q.Pred = &sqlast.Binary{Op: op1, L: e1, R: e2}
		return q, nil
	}
	// IN / BETWEEN / LIKE / IS NULL predicates over the dimension.
	if t.kind == tkIdent && (t.text == "in" || t.text == "between" || t.text == "like" || t.text == "is" || t.text == "not") {
		pred, err := p.parseComparisonRest(e1)
		if err != nil {
			return q, err
		}
		if pred != e1 {
			q.Kind = sqlast.QualPred
			q.Pred = pred
			return q, nil
		}
	}
	// Positional single value.
	q.Kind = sqlast.QualPoint
	q.Val = e1
	return q, nil
}
