package parser

import (
	"fmt"
	"strconv"
	"strings"

	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// Parser consumes a token stream produced by lex.
type Parser struct {
	src  string
	toks []token
	i    int
	// inModel enables spreadsheet-only syntax: cell references (ident[...]),
	// cv(), previous(), IS PRESENT.
	inModel bool
}

// Parse parses one or more ';'-separated statements.
func Parse(sql string) ([]sqlast.Statement, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, err
	}
	var stmts []sqlast.Statement
	for {
		for p.peekOp(";") {
			p.next()
		}
		if p.peek().kind == tkEOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.peekOp(";") && p.peek().kind != tkEOF {
			return nil, p.errf("unexpected %q after statement", p.peek().text)
		}
	}
}

// ParseQuery parses a single SELECT statement.
func ParseQuery(sql string) (*sqlast.SelectStmt, error) {
	stmts, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	q, ok := stmts[0].(*sqlast.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("statement is not a query")
	}
	return q, nil
}

// ParseExpr parses a standalone expression (tests and internal tooling).
func ParseExpr(s string) (sqlast.Expr, error) {
	p, err := newParser(s)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, p.errf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

// ParseModelExpr parses a standalone expression with spreadsheet syntax
// enabled (cell references, cv(), previous()).
func ParseModelExpr(s string) (sqlast.Expr, error) {
	p, err := newParser(s)
	if err != nil {
		return nil, err
	}
	p.inModel = true
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, p.errf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

func newParser(sql string) (*Parser, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	return &Parser{src: sql, toks: toks}, nil
}

// --- token plumbing ---

func (p *Parser) peek() token { return p.toks[p.i] }
func (p *Parser) peekAt(n int) token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+n]
}
func (p *Parser) next() token {
	t := p.toks[p.i]
	if t.kind != tkEOF {
		p.i++
	}
	return t
}

func (p *Parser) peekOp(op string) bool {
	t := p.peek()
	return t.kind == tkOp && t.text == op
}

func (p *Parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %q", op, p.peek().text)
	}
	return nil
}

// peekKw reports whether the current token is the given keyword
// (keywords are just identifiers compared case-insensitively).
func (p *Parser) peekKw(kw string) bool {
	t := p.peek()
	return t.kind == tkIdent && !t.quoted && t.text == kw
}

// peekAliasable reports whether the current token can serve as an implicit
// alias (an identifier that is either quoted or not a clause keyword).
func (p *Parser) peekAliasable() bool {
	t := p.peek()
	return t.kind == tkIdent && (t.quoted || !reservedAfterExpr[t.text])
}

func (p *Parser) acceptKw(kw string) bool {
	if p.peekKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.peek()
	tok := t.text
	if t.kind == tkEOF {
		tok = ""
	}
	return posError(p.src, t.pos, tok, fmt.Sprintf(format, args...))
}

// --- statements ---

func (p *Parser) parseStatement() (sqlast.Statement, error) {
	switch {
	case p.peekKw("select") || p.peekKw("with"):
		return p.parseSelectStmt()
	case p.peekKw("create"):
		return p.parseCreate()
	case p.peekKw("insert"):
		return p.parseInsert()
	case p.peekKw("refresh"):
		return p.parseRefresh()
	case p.peekKw("drop"):
		return p.parseDrop()
	case p.peekKw("delete"):
		return p.parseDelete()
	case p.peekKw("update"):
		return p.parseUpdate()
	}
	return nil, p.errf("expected SELECT, WITH, CREATE, INSERT, UPDATE, DELETE, REFRESH or DROP, found %q", p.peek().text)
}

func (p *Parser) parseDelete() (sqlast.Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	st := &sqlast.DeleteStmt{Table: name}
	if p.acceptKw("where") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = cond
	}
	return st, nil
}

func (p *Parser) parseUpdate() (sqlast.Statement, error) {
	p.next() // UPDATE
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	st := &sqlast.UpdateStmt{Table: name}
	for {
		col, err := p.parseIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		st.Exprs = append(st.Exprs, e)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("where") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = cond
	}
	return st, nil
}

// parseCreate dispatches CREATE TABLE / CREATE [MATERIALIZED] VIEW.
func (p *Parser) parseCreate() (sqlast.Statement, error) {
	p.next() // CREATE
	materialized := p.acceptKw("materialized")
	switch {
	case !materialized && p.peekKw("table"):
		return p.parseCreateTableBody()
	case p.acceptKw("view"):
		name, err := p.parseIdent("view name")
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		return &sqlast.CreateView{Name: name, Query: q, Materialized: materialized}, nil
	}
	return nil, p.errf("expected TABLE or [MATERIALIZED] VIEW after CREATE, found %q", p.peek().text)
}

func (p *Parser) parseRefresh() (sqlast.Statement, error) {
	p.next() // REFRESH
	if p.acceptKw("materialized") {
		if err := p.expectKw("view"); err != nil {
			return nil, err
		}
	}
	name, err := p.parseIdent("materialized view name")
	if err != nil {
		return nil, err
	}
	st := &sqlast.RefreshStmt{Name: name}
	switch {
	case p.acceptKw("full"):
		st.Full = true
	case p.acceptKw("incremental"):
	}
	return st, nil
}

func (p *Parser) parseDrop() (sqlast.Statement, error) {
	p.next() // DROP
	p.acceptKw("materialized")
	if !p.acceptKw("table") && !p.acceptKw("view") {
		return nil, p.errf("expected TABLE or VIEW after DROP, found %q", p.peek().text)
	}
	name, err := p.parseIdent("object name")
	if err != nil {
		return nil, err
	}
	return &sqlast.DropStmt{Name: name}, nil
}

var kindNames = map[string]types.Kind{
	"int": types.KindInt, "integer": types.KindInt, "bigint": types.KindInt, "smallint": types.KindInt,
	"float": types.KindFloat, "double": types.KindFloat, "real": types.KindFloat,
	"number": types.KindFloat, "numeric": types.KindFloat, "decimal": types.KindFloat,
	"varchar": types.KindString, "varchar2": types.KindString, "char": types.KindString,
	"text": types.KindString, "string": types.KindString,
	"bool": types.KindBool, "boolean": types.KindBool,
}

func (p *Parser) parseCreateTableBody() (sqlast.Statement, error) {
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ct := &sqlast.CreateTable{Name: name}
	for {
		cn, err := p.parseIdent("column name")
		if err != nil {
			return nil, err
		}
		tn, err := p.parseIdent("column type")
		if err != nil {
			return nil, err
		}
		k, ok := kindNames[tn]
		if !ok {
			return nil, p.errf("unknown column type %q", tn)
		}
		// Swallow optional (n[,m]) length spec.
		if p.acceptOp("(") {
			for !p.acceptOp(")") {
				if p.peek().kind == tkEOF {
					return nil, p.errf("unterminated type length")
				}
				p.next()
			}
		}
		ct.Cols = append(ct.Cols, types.Column{Name: cn, Kind: k})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *Parser) parseInsert() (sqlast.Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	ins := &sqlast.InsertStmt{Table: name}
	if p.peekOp("(") {
		p.next()
		for {
			cn, err := p.parseIdent("column name")
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, cn)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.acceptKw("values"):
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []sqlast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	case p.peekKw("select") || p.peekKw("with"):
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		ins.Query = q
	default:
		return nil, p.errf("expected VALUES or SELECT, found %q", p.peek().text)
	}
	return ins, nil
}

// --- queries ---

func (p *Parser) parseSelectStmt() (*sqlast.SelectStmt, error) {
	stmt := &sqlast.SelectStmt{}
	if p.acceptKw("with") {
		for {
			name, err := p.parseIdent("CTE name")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("as"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			stmt.With = append(stmt.With, sqlast.CTE{Name: name, Query: q})
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	q, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	stmt.Query = q
	if p.peekKw("order") {
		items, err := p.parseOrderBy()
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = items
	}
	if p.acceptKw("limit") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Limit = e
	}
	return stmt, nil
}

func (p *Parser) parseOrderBy() ([]sqlast.OrderItem, error) {
	p.next() // ORDER
	if err := p.expectKw("by"); err != nil {
		return nil, err
	}
	var items []sqlast.OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it := sqlast.OrderItem{Expr: e}
		if p.acceptKw("desc") {
			it.Desc = true
		} else {
			p.acceptKw("asc")
		}
		items = append(items, it)
		if p.acceptOp(",") {
			continue
		}
		return items, nil
	}
}

func (p *Parser) parseQueryExpr() (sqlast.QueryExpr, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for p.peekKw("union") {
		p.next()
		all := p.acceptKw("all")
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Union{L: left, R: right, All: all}
	}
	return left, nil
}

// parseQueryTerm parses one operand of a UNION: a select body or a
// parenthesized full SELECT.
func (p *Parser) parseQueryTerm() (sqlast.QueryExpr, error) {
	if !p.peekOp("(") || !p.parenStartsQuery() {
		return p.parseSelectBody()
	}
	p.next()
	sub, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	// A parenthesized statement without its own ORDER BY/LIMIT/WITH
	// collapses to its body; otherwise keep it as a derived subquery.
	if len(sub.With) == 0 && len(sub.OrderBy) == 0 && sub.Limit == nil {
		return sub.Query, nil
	}
	return &sqlast.SelectBody{
		Items: []sqlast.SelectItem{{Expr: &sqlast.Star{}}},
		From:  []sqlast.TableRef{&sqlast.SubqueryRef{Sub: sub}},
	}, nil
}

// parenStartsQuery reports whether the '(' at the cursor opens a subquery.
func (p *Parser) parenStartsQuery() bool {
	depth := 0
	for n := 0; ; n++ {
		t := p.peekAt(n)
		if t.kind == tkEOF {
			return false
		}
		if t.kind == tkOp && t.text == "(" {
			depth++
			continue
		}
		if depth == 1 && t.kind == tkIdent {
			return !t.quoted && (t.text == "select" || t.text == "with")
		}
		if depth == 1 {
			return false
		}
	}
}

func (p *Parser) parseSelectBody() (*sqlast.SelectBody, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	body := &sqlast.SelectBody{}
	if p.acceptKw("distinct") {
		body.Distinct = true
	} else {
		p.acceptKw("all")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		body.Items = append(body.Items, item)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("from") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			body.From = append(body.From, tr)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body.Where = e
	}
	if p.peekKw("group") {
		p.next()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			body.GroupBy = append(body.GroupBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body.Having = e
	}
	if p.peekKw("spreadsheet") || p.peekKw("model") {
		sc, err := p.parseSpreadsheetClause()
		if err != nil {
			return nil, err
		}
		body.Spreadsheet = sc
	}
	return body, nil
}

func (p *Parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.peekOp("*") {
		p.next()
		return sqlast.SelectItem{Expr: &sqlast.Star{}}, nil
	}
	// t.* qualified star.
	if p.peek().kind == tkIdent && p.peekAt(1).kind == tkOp && p.peekAt(1).text == "." &&
		p.peekAt(2).kind == tkOp && p.peekAt(2).text == "*" {
		tbl := p.next().text
		p.next()
		p.next()
		return sqlast.SelectItem{Expr: &sqlast.Star{Table: tbl}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.acceptKw("as") {
		a, err := p.parseIdent("alias")
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		item.Alias = a
	} else if p.peekAliasable() {
		item.Alias = p.next().text
	}
	return item, nil
}

// reservedAfterExpr are keywords that terminate an implicit alias position.
var reservedAfterExpr = map[string]bool{
	"from": true, "where": true, "group": true, "having": true, "order": true,
	"union": true, "limit": true, "on": true, "join": true, "inner": true,
	"left": true, "right": true, "full": true, "cross": true, "outer": true,
	"and": true, "or": true, "not": true, "as": true, "asc": true, "desc": true,
	"spreadsheet": true, "model": true, "when": true, "then": true, "else": true,
	"end": true, "in": true, "between": true, "like": true, "is": true,
	"values": true, "set": true, "until": true, "dby": true, "mea": true,
	"pby": true, "rules": true, "iterate": true, "reference": true,
	"dimension": true, "partition": true, "measures": true, "update": true,
	"upsert": true, "sequential": true, "automatic": true, "ignore": true,
	"nav": true, "by": true, "select": true, "with": true,
}

func (p *Parser) parseTableRef() (sqlast.TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt sqlast.JoinType
		switch {
		case p.peekKw("join") || p.peekKw("inner"):
			p.acceptKw("inner")
			jt = sqlast.JoinInner
		case p.peekKw("left"):
			p.next()
			p.acceptKw("outer")
			jt = sqlast.JoinLeft
		case p.peekKw("right"):
			p.next()
			p.acceptKw("outer")
			jt = sqlast.JoinRight
		case p.peekKw("cross"):
			p.next()
			jt = sqlast.JoinCross
		default:
			return left, nil
		}
		if err := p.expectKw("join"); err != nil {
			return nil, err
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &sqlast.JoinRef{L: left, R: right, Type: jt}
		if jt != sqlast.JoinCross {
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *Parser) parseTablePrimary() (sqlast.TableRef, error) {
	if p.peekOp("(") {
		if p.parenStartsQuery() {
			p.next()
			sub, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			alias := ""
			p.acceptKw("as")
			if p.peekAliasable() {
				alias = p.next().text
			}
			return &sqlast.SubqueryRef{Sub: sub, Alias: alias}, nil
		}
		// Parenthesized join tree, optionally aliased ("(a CROSS JOIN b) v").
		p.next()
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.acceptKw("as")
		if p.peekAliasable() {
			alias := p.next().text
			if j, ok := tr.(*sqlast.JoinRef); ok {
				j.Alias = alias
			} else if tn, ok := tr.(*sqlast.TableName); ok && tn.Alias == "" {
				tn.Alias = alias
			} else if sq, ok := tr.(*sqlast.SubqueryRef); ok && sq.Alias == "" {
				sq.Alias = alias
			}
		}
		return tr, nil
	}
	name, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	t := &sqlast.TableName{Name: name}
	p.acceptKw("as")
	if p.peekAliasable() {
		t.Alias = p.next().text
	}
	return t, nil
}

func (p *Parser) parseIdent(what string) (string, error) {
	t := p.peek()
	if t.kind != tkIdent {
		return "", p.errf("expected %s, found %q", what, t.text)
	}
	p.next()
	return t.text, nil
}

func parseNumber(text string) (types.Value, error) {
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return types.NewInt(i), nil
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return types.Null, fmt.Errorf("bad numeric literal %q", text)
	}
	return types.NewFloat(f), nil
}
