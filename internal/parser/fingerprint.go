package parser

// Statement-text fingerprinting for the serving-path cache. The fingerprint
// is computed over the lexer's token stream, so two texts that differ only
// in whitespace, comments or keyword/identifier letter case hash the same,
// while texts with different token content (or token kinds: the string 'a'
// versus the identifier a) hash differently.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64Byte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

func fnv64String(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnv64Byte(h, s[i])
	}
	return h
}

// Fingerprint returns a stable 64-bit hash of sql's canonical token stream:
// whitespace- and case-insensitive, comment-blind, trailing-semicolon-blind.
// Lexically invalid input returns the lexer's error.
func Fingerprint(sql string) (uint64, error) {
	return fingerprint(sql, false)
}

// FingerprintShape is Fingerprint with literals parameterized out: every
// number and string literal hashes as a placeholder, so queries differing
// only in constants share a shape. Useful for workload grouping; the plan
// cache itself keys on the exact-literal Fingerprint because plans embed
// constant values.
func FingerprintShape(sql string) (uint64, error) {
	return fingerprint(sql, true)
}

func fingerprint(sql string, shape bool) (uint64, error) {
	toks, err := lex(sql)
	if err != nil {
		return 0, err
	}
	end := len(toks) - 1 // drop tkEOF
	for end > 0 && toks[end-1].kind == tkOp && toks[end-1].text == ";" {
		end--
	}
	h := uint64(fnvOffset64)
	for _, t := range toks[:end] {
		h = fnv64Byte(h, byte(t.kind))
		if t.quoted {
			// "select" (a quoted name) must not collide with the keyword.
			h = fnv64Byte(h, 1)
		}
		if shape && (t.kind == tkNumber || t.kind == tkString) {
			h = fnv64String(h, "?")
		} else {
			h = fnv64String(h, t.text)
		}
		h = fnv64Byte(h, 0) // separator: "a b" must not collide with "ab"
	}
	return h, nil
}
