package parser

import "testing"

// FuzzParse drives the full parser with arbitrary input; any panic is a
// bug (errors are fine). Run with: go test -fuzz FuzzParse ./internal/parser
func FuzzParse(f *testing.F) {
	for _, seed := range corpus {
		f.Add(seed)
	}
	f.Add("SELECT 1")
	f.Add("SELECT s[FOR t FROM 1 TO 3] FROM f SPREADSHEET DBY(t) MEA(s) (s[1]=2)")
	f.Add("SELECT rank() OVER (PARTITION BY a ORDER BY b ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM t")
	f.Add("CREATE MATERIALIZED VIEW v AS SELECT * FROM t; REFRESH v FULL; DROP VIEW v")
	f.Fuzz(func(t *testing.T, sql string) {
		// Must not panic; errors are expected for most inputs.
		stmts, err := Parse(sql)
		if err == nil {
			// Parsed statements must render without panicking either.
			for _, s := range stmts {
				if q, ok := s.(interface{ String() string }); ok {
					_ = q.String()
				}
			}
		}
	})
}
