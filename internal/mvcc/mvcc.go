// Package mvcc provides copy-on-write versioned table images: immutable
// snapshots of a table's rows published at statement boundaries so readers
// scan a consistent version without holding any lock while writers install
// the next one.
//
// The protocol (documented in DESIGN.md §16):
//
//   - Writers mutate the master row slice under the database's exclusive
//     statement lock and publish a fresh Image when the statement completes.
//     Every mutation either appends past the published length (Insert) or
//     replaces the whole slice with a newly allocated one (UPDATE, DELETE,
//     REFRESH), so rows visible through an already-published Image are never
//     written again.
//   - Readers pin Images (see catalog.Snapshot) and only ever dereference
//     the pinned slice header. An append into the master slice's spare
//     capacity writes array elements at indexes >= the pinned length, which
//     no reader indexes, so the scheme is race-free without a single atomic
//     on the read path beyond the pointer load that fetched the Image.
package mvcc

import (
	"sync"
	"sync/atomic"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/types"
)

// Image is one immutable version of a table's rows. Rows (the slice header,
// the row slices and the values inside them) must never be mutated after
// publication; the engine's copy-on-write discipline guarantees it.
type Image struct {
	// Version is the table's mutation counter at publication time.
	Version int64
	// Rows is the published row set. Its capacity is clipped to its length
	// so an accidental append can never scribble into the master slice.
	Rows []types.Row

	ncols int

	// colMu serializes columnar builds; colImg caches the image's columnar
	// transposition (nil inner image = rows not rectangular, cached too).
	colMu  sync.Mutex
	colImg atomic.Pointer[colCache]
}

// colCache wraps the built columnar image so "built, but nil" is
// distinguishable from "not built yet".
type colCache struct{ img *colstore.Table }

// NewImage publishes rows as an immutable image at the given version.
// ncols is the table's schema width, used for the columnar transposition.
func NewImage(version int64, ncols int, rows []types.Row) *Image {
	return &Image{Version: version, Rows: rows[:len(rows):len(rows)], ncols: ncols}
}

// Covers reports whether the image was published from exactly this row set
// at this version: same version, same length, same backing array. A writer
// uses it to skip re-publishing untouched tables.
func (im *Image) Covers(v int64, rows []types.Row) bool {
	if im == nil || im.Version != v || len(im.Rows) != len(rows) {
		return false
	}
	if len(rows) == 0 {
		return true
	}
	return &im.Rows[0] == &rows[0]
}

// Columnar returns the image's columnar transposition, built lazily on
// first use and cached for the image's lifetime (an image's rows never
// change, so no freshness check is needed). It returns nil when the rows
// are not rectangular. Safe for concurrent use.
func (im *Image) Columnar() *colstore.Table {
	if c := im.colImg.Load(); c != nil {
		return c.img
	}
	im.colMu.Lock()
	defer im.colMu.Unlock()
	if c := im.colImg.Load(); c != nil {
		return c.img
	}
	img := colstore.FromRows(im.ncols, im.Rows)
	im.colImg.Store(&colCache{img: img})
	return img
}

// SeedColumnar pre-fills the columnar cache (the publisher carries over the
// table's live columnar image when it is fresh at the published version, so
// the two caches share one transposition instead of building it twice).
func (im *Image) SeedColumnar(img *colstore.Table) {
	im.colImg.Store(&colCache{img: img})
}
