package exec

import (
	"sqlsheet/internal/aggs"
	"sqlsheet/internal/colstore"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// Batch aggregation: when the group-by input carries columnar provenance,
// its grouping keys are plain columns, and every aggregate argument has a
// supported compute kernel, each morsel is aggregated in three vectorized
// steps instead of a per-row loop:
//
//  1. a group-id vector: every row of the morsel is assigned a dense int32
//     id in first-seen order (dict-coded and integer keys probe a packed
//     integer map; anything else probes by the same encoded key bytes the
//     row path uses);
//  2. one kernel run per aggregate argument, producing typed vectors;
//  3. one bulk accumulate per aggregate (eval.AggBatch over aggs.SumBatch &
//     co.), addressed by group id, feeding values in ascending row order.
//
// The result is unboxed into the same groupAcc the row path builds — group
// keys keyed by their types.AppendKey encoding in first-seen order — so
// result rendering and the morsel-ordered partial merge are shared, and the
// output is bit-identical (float accumulation order included) to the row
// path at every worker count.

// vecAggSpec is one aggregate's vectorized plan over a concrete image: its
// argument kernels and the kind of each argument vector (decided per image;
// kinds the aggregate's row accumulator skips feed nothing).
type vecAggSpec struct {
	name  string
	star  bool
	kerns []eval.ExprKernel
	kinds []types.Kind
}

// vecGroupPlan is the batch aggregation plan for one group-by over one
// input image. nil means the row path runs.
type vecGroupPlan struct {
	specs []vecAggSpec
}

// vecGroupPlan builds the batch plan, or nil when any part of the group-by
// has no vectorized form: provenance missing, keys not plain columns, an
// argument kernel missing or unsupported over this image (so shapes the row
// path rejects — e.g. strings under SUM's argument arithmetic — fall back
// whole-operator and raise the identical error), or an aggregate without a
// batch accumulator.
func (ex *Executor) vecGroupPlan(n *plan.GroupBy, in *Result, ke *keyEnc) *vecGroupPlan {
	if ex.Opts.DisableVectorizedExec || !vecOK(in) {
		return nil
	}
	if len(n.Keys) > 0 && ke == nil {
		return nil
	}
	vp := &vecGroupPlan{specs: make([]vecAggSpec, len(n.Aggs))}
	for i, spec := range n.Aggs {
		s := vecAggSpec{name: spec.Call.Name, star: spec.Call.Star}
		if !s.star {
			args := spec.Call.Args
			if i >= len(n.ArgK) || len(n.ArgK[i]) != len(args) {
				return nil
			}
			s.kerns = n.ArgK[i]
			s.kinds = make([]types.Kind, len(args))
			for j := range args {
				k := s.kerns[j]
				if !k.Valid() || k.MinCols() > vecWidth(in) {
					return nil
				}
				kind, ok := k.OutKind(in.Img, in.ColMap)
				if !ok {
					return nil
				}
				s.kinds[j] = kind
			}
		}
		if _, ok := eval.NewAggBatch(s.name, s.star, s.kinds); !ok {
			return nil
		}
		vp.specs[i] = s
	}
	return vp
}

// gidTable assigns dense group ids in first-seen order over one morsel and
// records, per new group, its encoded key bytes (the row path's map key)
// and boxed key values.
type gidTable struct {
	ke      *keyEnc
	keys    []types.Row
	keyStrs []string
	keyBuf  []byte

	byStr  map[string]int32
	byCode map[uint64]int32
	codes  []keyCodes
}

// keyCodes is one key column readable as a packed small-domain code:
// dictionary string codes or boolean 0/1 content.
type keyCodes struct {
	codes []uint32
	ints  []int64
	nulls colstore.Bitmap
}

// codeAt reads row r's 32-bit code, with 2^32-1 for NULL. Dictionary codes
// stay under DictMaxEntries (2^16) and bools under 3, so the NULL sentinel
// never collides and two columns pack into one uint64: distinct code tuples
// correspond exactly to distinct encoded key bytes, NULLs included.
func (kc *keyCodes) codeAt(r int) uint64 {
	if kc.nulls != nil && kc.nulls.Get(r) {
		return 1<<32 - 1
	}
	if kc.codes != nil {
		return uint64(kc.codes[r])
	}
	return uint64(kc.ints[r]) + 1
}

// newGidTable picks the probe strategy for ke's key columns: up to two
// columns whose values pack into 32-bit codes (dictionary strings, bools)
// probe a packed-integer map — distinct code tuples correspond exactly to
// distinct encoded keys, NULLs included — and anything else probes by the
// encoded key bytes.
func newGidTable(ke *keyEnc) *gidTable {
	t := &gidTable{ke: ke}
	if ke != nil && len(ke.cols) >= 1 && len(ke.cols) <= 2 {
		codes := make([]keyCodes, 0, len(ke.cols))
		for _, c := range ke.cols {
			switch {
			case c.Kind == types.KindString && c.IsDict():
				// Dict codes are < 2^16, and NULL slots hold code 0 —
				// masked by the bitmap before the code is read.
				codes = append(codes, keyCodes{codes: c.Codes, nulls: c.Nulls})
			case c.Kind == types.KindBool && c.Boxed == nil:
				codes = append(codes, keyCodes{ints: c.Ints, nulls: c.Nulls})
			default:
				codes = nil
			}
			if codes == nil {
				break
			}
		}
		if codes != nil {
			t.codes = codes
			t.byCode = make(map[uint64]int32)
			return t
		}
	}
	t.byStr = make(map[string]int32)
	return t
}

// gid returns result position ri's dense group id, inserting a new group in
// first-seen order. The encoded key bytes recorded for a new group are
// byte-identical to the row path's map key.
func (t *gidTable) gid(ri int) int32 {
	if t.byCode != nil {
		r := t.ke.imgRow(ri)
		packed := t.codes[0].codeAt(r)
		if len(t.codes) == 2 {
			packed = packed<<32 | t.codes[1].codeAt(r)
		}
		g, ok := t.byCode[packed]
		if !ok {
			g = t.insert(ri)
			t.byCode[packed] = g
		}
		return g
	}
	t.keyBuf = t.ke.groupKeyInto(t.keyBuf, ri)
	g, ok := t.byStr[string(t.keyBuf)]
	if !ok {
		g = t.insert(ri)
		t.byStr[t.keyStrs[g]] = g
	}
	return g
}

func (t *gidTable) insert(ri int) int32 {
	g := int32(len(t.keys))
	t.keyBuf = t.ke.groupKeyInto(t.keyBuf, ri)
	t.keyStrs = append(t.keyStrs, string(t.keyBuf))
	t.keys = append(t.keys, t.ke.keyVals(ri))
	return g
}

// accumulate aggregates rows [lo, hi) of in into a fresh groupAcc using the
// batch kernels. Rows feed in ascending order, so per-group accumulator
// state — float addition order included — matches the row path's exactly.
func (vp *vecGroupPlan) accumulate(in *Result, ke *keyEnc, lo, hi int) (*groupAcc, error) {
	m := hi - lo
	selBuf := colstore.GetSel(m)
	defer colstore.PutSel(selBuf)
	sel := *selBuf
	for p := lo; p < hi; p++ {
		sel = append(sel, int32(p))
	}
	*selBuf = sel[:0]

	gids := make([]int32, m)
	var keys []types.Row
	var keyStrs []string
	if ke != nil {
		t := newGidTable(ke)
		for r := 0; r < m; r++ {
			gids[r] = t.gid(lo + r)
		}
		keys, keyStrs = t.keys, t.keyStrs
	} else if m > 0 {
		// No grouping keys: one global group, the row path's "" entry.
		keys = append(keys, nil)
		keyStrs = append(keyStrs, "")
	}
	ng := len(keys)

	states := make([]eval.AggBatch, len(vp.specs))
	for i := range vp.specs {
		s := &vp.specs[i]
		st, _ := eval.NewAggBatch(s.name, s.star, s.kinds)
		states[i] = st
		st.Grow(ng)
		if s.star {
			st.Feed(gids, nil)
			continue
		}
		vecs := make([]*eval.ExprVec, len(s.kerns))
		for j := range s.kerns {
			v, err := s.kerns[j].Run(in.Img, in.ColMap, in.RowIdx, sel)
			if err != nil {
				return nil, err
			}
			vecs[j] = v
		}
		st.Feed(gids, vecs)
	}

	acc := newGroupAcc()
	for g := 0; g < ng; g++ {
		grp := &group{keys: keys[g], accs: make([]aggs.Agg, len(states))}
		for i := range states {
			grp.accs[i] = states[i].Unbox(g)
		}
		acc.groups[keyStrs[g]] = grp
		acc.order = append(acc.order, keyStrs[g])
	}
	return acc, nil
}
