package exec

import (
	"fmt"

	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// execJoin dispatches on join type and method. Hash joins build one hash
// table on the non-preserved (or right) side; nested-loop joins evaluate
// the full ON condition per pair. The ANSI-join cost model the paper
// compares against (one hash table per join) lives here.
func (ex *Executor) execJoin(n *plan.Join, outer *eval.Binding) (*Result, error) {
	l, err := ex.Execute(n.L, outer)
	if err != nil {
		return nil, err
	}
	r, err := ex.Execute(n.R, outer)
	if err != nil {
		return nil, err
	}
	method := n.Method
	if method == plan.JoinAuto {
		if len(n.LeftKeys) > 0 {
			method = plan.JoinHash
		} else {
			method = plan.JoinNestedLoop
		}
	}
	if method == plan.JoinHash && len(n.LeftKeys) == 0 {
		method = plan.JoinNestedLoop
	}
	switch method {
	case plan.JoinHash:
		return ex.hashJoin(n, l, r, outer)
	case plan.JoinNestedLoop:
		return ex.nestedLoopJoin(n, l, r, outer)
	}
	return nil, fmt.Errorf("exec: unknown join method")
}

// evalKeys computes a composite join key; ok is false when any key value is
// NULL (SQL equality never matches NULLs).
func evalKeys(ctx *eval.Context, row types.Row, keys []sqlast.Expr) (string, bool, error) {
	ctx.Binding.Row = row
	buf := make([]byte, 0, 16*len(keys))
	for _, k := range keys {
		v, err := eval.Eval(ctx, k)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil
		}
		buf = types.AppendKey(buf, v)
	}
	return string(buf), true, nil
}

func (ex *Executor) hashJoin(n *plan.Join, l, r *Result, outer *eval.Binding) (*Result, error) {
	// Build on the right side except for RIGHT OUTER, which builds left and
	// probes right so the preserved side drives the output.
	buildRes, probeRes := r, l
	buildKeys, probeKeys := n.RightKeys, n.LeftKeys
	probeIsLeft := true
	if n.Type == sqlast.JoinRight {
		buildRes, probeRes = l, r
		buildKeys, probeKeys = n.LeftKeys, n.RightKeys
		probeIsLeft = false
	}

	bctx := ex.ctx(buildRes.Schema, nil, outer)
	table := make(map[string][]int, len(buildRes.Rows))
	for i, row := range buildRes.Rows {
		k, ok, err := evalKeys(bctx, row, buildKeys)
		if err != nil {
			return nil, err
		}
		if ok {
			table[k] = append(table[k], i)
		}
	}

	lw, rw := len(l.Schema.Cols), len(r.Schema.Cols)
	combined := n.Schema()
	cctx := ex.ctx(combined, nil, outer)
	pctx := ex.ctx(probeRes.Schema, nil, outer)
	var out []types.Row
	combine := func(probe, build types.Row) types.Row {
		row := make(types.Row, 0, lw+rw)
		if probeIsLeft {
			row = append(append(row, probe...), build...)
		} else {
			row = append(append(row, build...), probe...)
		}
		return row
	}
	nullSide := func(w int) types.Row { return make(types.Row, w) }
	preserve := n.Type == sqlast.JoinLeft || n.Type == sqlast.JoinRight

	for _, probe := range probeRes.Rows {
		k, ok, err := evalKeys(pctx, probe, probeKeys)
		if err != nil {
			return nil, err
		}
		matched := false
		if ok {
			for _, bi := range table[k] {
				row := combine(probe, buildRes.Rows[bi])
				if n.Residual != nil {
					cctx.Binding.Row = row
					pass, err := eval.EvalBool(cctx, n.Residual)
					if err != nil {
						return nil, err
					}
					if !pass {
						continue
					}
				}
				matched = true
				out = append(out, row)
			}
		}
		if !matched && preserve {
			if probeIsLeft {
				out = append(out, combine(probe, nullSide(rw)))
			} else {
				out = append(out, combine(probe, nullSide(lw)))
			}
		}
	}
	return &Result{Schema: combined, Rows: out}, nil
}

func (ex *Executor) nestedLoopJoin(n *plan.Join, l, r *Result, outer *eval.Binding) (*Result, error) {
	lw, rw := len(l.Schema.Cols), len(r.Schema.Cols)
	combined := n.Schema()
	cctx := ex.ctx(combined, nil, outer)

	// Reassemble the full ON condition from keys + residual.
	on := n.Residual
	for i := range n.LeftKeys {
		on = andAll(on, &sqlast.Binary{Op: "=", L: n.LeftKeys[i], R: n.RightKeys[i]})
	}

	var out []types.Row
	switch n.Type {
	case sqlast.JoinRight:
		for _, rr := range r.Rows {
			matched := false
			for _, lr := range l.Rows {
				row := append(append(make(types.Row, 0, lw+rw), lr...), rr...)
				pass := true
				if on != nil {
					cctx.Binding.Row = row
					var err error
					pass, err = eval.EvalBool(cctx, on)
					if err != nil {
						return nil, err
					}
				}
				if pass {
					matched = true
					out = append(out, row)
				}
			}
			if !matched {
				out = append(out, append(make(types.Row, lw, lw+rw), rr...))
			}
		}
	default:
		for _, lr := range l.Rows {
			matched := false
			for _, rr := range r.Rows {
				row := append(append(make(types.Row, 0, lw+rw), lr...), rr...)
				pass := true
				if on != nil {
					cctx.Binding.Row = row
					var err error
					pass, err = eval.EvalBool(cctx, on)
					if err != nil {
						return nil, err
					}
				}
				if pass {
					matched = true
					out = append(out, row)
				}
			}
			if !matched && n.Type == sqlast.JoinLeft {
				out = append(out, append(append(make(types.Row, 0, lw+rw), lr...), make(types.Row, rw)...))
			}
		}
	}
	return &Result{Schema: combined, Rows: out}, nil
}

func andAll(a, b sqlast.Expr) sqlast.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &sqlast.Binary{Op: "AND", L: a, R: b}
}
