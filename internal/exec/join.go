package exec

import (
	"fmt"

	"sqlsheet/internal/colstore"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// execJoin dispatches on join type and method. Hash joins build one hash
// table on the non-preserved (or right) side; nested-loop joins evaluate
// the full ON condition per pair. The ANSI-join cost model the paper
// compares against (one hash table per join) lives here.
func (ex *Executor) execJoin(n *plan.Join, outer *eval.Binding) (*Result, error) {
	l, err := ex.Execute(n.L, outer)
	if err != nil {
		return nil, err
	}
	r, err := ex.Execute(n.R, outer)
	if err != nil {
		return nil, err
	}
	method := n.Method
	if method == plan.JoinAuto {
		if len(n.LeftKeys) > 0 {
			method = plan.JoinHash
		} else {
			method = plan.JoinNestedLoop
		}
	}
	if method == plan.JoinHash && len(n.LeftKeys) == 0 {
		method = plan.JoinNestedLoop
	}
	switch method {
	case plan.JoinHash:
		return ex.hashJoin(n, l, r, outer)
	case plan.JoinNestedLoop:
		return ex.nestedLoopJoin(n, l, r, outer)
	}
	return nil, fmt.Errorf("exec: unknown join method")
}

// evalKeysInto computes a composite join key into buf (reused across rows
// by each caller, so steady-state probing does not allocate); ok is false
// when any key value is NULL (SQL equality never matches NULLs).
func evalKeysInto(buf []byte, ctx *eval.Context, row types.Row, keys []sqlast.Expr, keysC []eval.CompiledExpr) ([]byte, bool, error) {
	ctx.Binding.Row = row
	buf = buf[:0]
	for i, k := range keys {
		v, err := evalC(ctx, pickC(keysC, i), k)
		if err != nil {
			return buf, false, err
		}
		if v.IsNull() {
			return buf, false, nil
		}
		buf = types.AppendKey(buf, v)
	}
	return buf, true, nil
}

// joinTable is the hash-join build side: one map when built serially, or N
// hash-partitioned maps (partition = fnv32a(key)%N) when built in parallel,
// so build workers never share a write target and probes stay lock-free.
// Row-index lists are always in ascending row order — identical to the
// serial build — so probe output order matches the serial engine exactly.
type joinTable struct {
	parts []map[string][]int
}

// lookup probes with a byte key; the string conversions in the map index
// expressions are recognized by the compiler and do not allocate.
func (t *joinTable) lookup(k []byte) []int {
	if len(t.parts) == 1 {
		return t.parts[0][string(k)]
	}
	return t.parts[fnv32aBytes(k)%uint32(len(t.parts))][string(k)]
}

// joinEntry is one build row's key, staged during the partition phase.
type joinEntry struct {
	key string
	row int
}

// buildJoinTable hashes the build side. Large inputs run the morsel-parallel
// two-phase build: workers first partition each morsel's keys by
// fnv32a(key)%N into per-morsel buckets, then N partition tasks assemble
// their hash table by draining the buckets in morsel order (keeping row
// indices ascending). No global lock is ever taken.
func (ex *Executor) buildJoinTable(buildRes *Result, buildKeys []sqlast.Expr, buildKeysC []eval.CompiledExpr, outer *eval.Binding) (*joinTable, error) {
	ke := ex.vecKeyEnc(buildRes, buildKeys)
	nm := ex.morselCount(len(buildRes.Rows))
	if nm > 0 && !anyHasSubquery(buildKeys) {
		np := ex.workers()
		staged := make([][][]joinEntry, nm) // [morsel][partition][]entry
		wc := ex.workerCtxs(buildRes.Schema, outer)
		if _, err := ex.forEachMorsel("join-build", len(buildRes.Rows), func(w int, m morsel) error {
			ctx := wc.get(w)
			local := make([][]joinEntry, np)
			var buf []byte
			for i := m.Lo; i < m.Hi; i++ {
				var ok bool
				var err error
				if ke != nil {
					buf, ok = ke.keyInto(buf, i)
				} else {
					buf, ok, err = evalKeysInto(buf, ctx, buildRes.Rows[i], buildKeys, buildKeysC)
					if err != nil {
						return err
					}
				}
				if ok {
					k := string(buf) // stored in the table; must own its bytes
					p := fnv32a(k) % uint32(np)
					local[p] = append(local[p], joinEntry{key: k, row: i})
				}
			}
			staged[m.Idx] = local
			return nil
		}); err != nil {
			return nil, err
		}
		parts := make([]map[string][]int, np)
		if err := ex.parallelN(np, func(p int) error {
			mp := make(map[string][]int, len(buildRes.Rows)/np+1)
			for _, local := range staged {
				for _, e := range local[p] {
					mp[e.key] = append(mp[e.key], e.row)
				}
			}
			parts[p] = mp
			return nil
		}); err != nil {
			return nil, err
		}
		return &joinTable{parts: parts}, nil
	}

	bctx := ex.ctx(buildRes.Schema, nil, outer)
	table := make(map[string][]int, len(buildRes.Rows))
	var buf []byte
	for i, row := range buildRes.Rows {
		var ok bool
		var err error
		if ke != nil {
			buf, ok = ke.keyInto(buf, i)
		} else {
			buf, ok, err = evalKeysInto(buf, bctx, row, buildKeys, buildKeysC)
			if err != nil {
				return nil, err
			}
		}
		if ok {
			table[string(buf)] = append(table[string(buf)], i)
		}
	}
	return &joinTable{parts: []map[string][]int{table}}, nil
}

func (ex *Executor) hashJoin(n *plan.Join, l, r *Result, outer *eval.Binding) (*Result, error) {
	// Build on the right side except for RIGHT OUTER, which builds left and
	// probes right so the preserved side drives the output.
	buildRes, probeRes := r, l
	buildKeys, probeKeys := n.RightKeys, n.LeftKeys
	buildKeysC, probeKeysC := n.RightKeysC, n.LeftKeysC
	probeIsLeft := true
	if n.Type == sqlast.JoinRight {
		buildRes, probeRes = l, r
		buildKeys, probeKeys = n.LeftKeys, n.RightKeys
		buildKeysC, probeKeysC = n.LeftKeysC, n.RightKeysC
		probeIsLeft = false
	}

	table, err := ex.buildJoinTable(buildRes, buildKeys, buildKeysC, outer)
	if err != nil {
		return nil, err
	}

	lw, rw := len(l.Schema.Cols), len(r.Schema.Cols)
	combined := n.Schema()
	combine := func(probe, build types.Row) types.Row {
		row := make(types.Row, 0, lw+rw)
		if probeIsLeft {
			row = append(append(row, probe...), build...)
		} else {
			row = append(append(row, build...), probe...)
		}
		return row
	}
	nullSide := func(w int) types.Row { return make(types.Row, w) }
	preserve := n.Type == sqlast.JoinLeft || n.Type == sqlast.JoinRight

	// carry: when both sides arrive with columnar provenance covering every
	// schema column, each emitted row also records its (probe image row,
	// build image row | -1) pair, and the output gathers both sides' columns
	// into a fresh image — so post-join filters, projections and group-bys
	// stay on the vectorized path instead of re-boxing. The boxed rows are
	// built exactly as before; the image is provenance over the same values
	// (colstore.Gather is bit-exact, with -1 yielding the NULL slots the
	// null-extended side's zero values already hold).
	carry := !ex.Opts.DisableVectorizedExec &&
		vecOK(probeRes) && vecOK(buildRes) && vecCovers(probeRes) && vecCovers(buildRes)

	// probeMorsel probes one row range against the (now read-only) table.
	// Each probe row's matches arrive in ascending build-row order, and
	// outer-join preservation is decided per probe row, so per-morsel
	// outputs stitched in morsel order equal the serial output exactly.
	pke := ex.vecKeyEnc(probeRes, probeKeys)
	type probeOut struct {
		rows []types.Row
		pidx []int32 // probe-side image row per output row (carry only)
		bidx []int32 // build-side image row, -1 = null-extended (carry only)
	}
	probeMorsel := func(pctx, cctx *eval.Context, m morsel) (probeOut, error) {
		var out probeOut
		var kbuf []byte
		emit := func(row types.Row, pi int, bi int32) {
			out.rows = append(out.rows, row)
			if carry {
				out.pidx = append(out.pidx, resImgRow(probeRes, pi))
				out.bidx = append(out.bidx, bi)
			}
		}
		for i := m.Lo; i < m.Hi; i++ {
			probe := probeRes.Rows[i]
			var ok bool
			var err error
			if pke != nil {
				kbuf, ok = pke.keyInto(kbuf, i)
			} else {
				kbuf, ok, err = evalKeysInto(kbuf, pctx, probe, probeKeys, probeKeysC)
				if err != nil {
					return out, err
				}
			}
			matched := false
			if ok {
				for _, bi := range table.lookup(kbuf) {
					row := combine(probe, buildRes.Rows[bi])
					if n.Residual != nil {
						cctx.Binding.Row = row
						pass, err := evalBoolC(cctx, n.ResidualC, n.Residual)
						if err != nil {
							return out, err
						}
						if !pass {
							continue
						}
					}
					matched = true
					emit(row, i, resImgRow(buildRes, bi))
				}
			}
			if !matched && preserve {
				if probeIsLeft {
					emit(combine(probe, nullSide(rw)), i, -1)
				} else {
					emit(combine(probe, nullSide(lw)), i, -1)
				}
			}
		}
		return out, nil
	}

	// joinResult assembles the output from morsel-ordered parts, gathering
	// the provenance image when carry is on.
	joinResult := func(parts []probeOut) *Result {
		total := 0
		for _, p := range parts {
			total += len(p.rows)
		}
		var rows []types.Row
		if total > 0 {
			rows = make([]types.Row, 0, total)
			for _, p := range parts {
				rows = append(rows, p.rows...)
			}
		}
		res := &Result{Schema: combined, Rows: rows}
		if !carry {
			return res
		}
		pidx := make([]int32, 0, total)
		bidx := make([]int32, 0, total)
		for _, p := range parts {
			pidx = append(pidx, p.pidx...)
			bidx = append(bidx, p.bidx...)
		}
		pw, bw := len(probeRes.Schema.Cols), len(buildRes.Schema.Cols)
		poff, boff := 0, pw
		if !probeIsLeft {
			poff, boff = bw, 0
		}
		img := &colstore.Table{NRows: total, Cols: make([]*colstore.Column, pw+bw), Rows: rows}
		for j := 0; j < pw; j++ {
			img.Cols[poff+j] = colstore.Gather(vecCol(probeRes, j), pidx)
		}
		for j := 0; j < bw; j++ {
			img.Cols[boff+j] = colstore.Gather(vecCol(buildRes, j), bidx)
		}
		res.Img = img
		return res
	}

	nm := ex.morselCount(len(probeRes.Rows))
	if nm > 0 && !anyHasSubquery(probeKeys) && !sqlast.HasSubquery(n.Residual) {
		parts := make([]probeOut, nm)
		pwc := ex.workerCtxs(probeRes.Schema, outer)
		cwc := ex.workerCtxs(combined, outer)
		if _, err := ex.forEachMorsel("join-probe", len(probeRes.Rows), func(w int, m morsel) error {
			out, err := probeMorsel(pwc.get(w), cwc.get(w), m)
			if err != nil {
				return err
			}
			parts[m.Idx] = out
			return nil
		}); err != nil {
			return nil, err
		}
		return joinResult(parts), nil
	}

	pctx := ex.ctx(probeRes.Schema, nil, outer)
	cctx := ex.ctx(combined, nil, outer)
	out, err := probeMorsel(pctx, cctx, morsel{Lo: 0, Hi: len(probeRes.Rows)})
	if err != nil {
		return nil, err
	}
	return joinResult([]probeOut{out}), nil
}

func (ex *Executor) nestedLoopJoin(n *plan.Join, l, r *Result, outer *eval.Binding) (*Result, error) {
	lw, rw := len(l.Schema.Cols), len(r.Schema.Cols)
	combined := n.Schema()
	cctx := ex.ctx(combined, nil, outer)

	// Reassemble the full ON condition from keys + residual. The combined
	// condition only exists at exec time, so it is compiled here rather
	// than by the plan-side pass.
	on := n.Residual
	for i := range n.LeftKeys {
		on = andAll(on, &sqlast.Binary{Op: "=", L: n.LeftKeys[i], R: n.RightKeys[i]})
	}
	var onC eval.CompiledExpr
	if on != nil && !ex.Opts.DisableCompiledEval {
		onC, _ = eval.Compile(combined, on)
	}

	var out []types.Row
	switch n.Type {
	case sqlast.JoinRight:
		for _, rr := range r.Rows {
			matched := false
			for _, lr := range l.Rows {
				row := append(append(make(types.Row, 0, lw+rw), lr...), rr...)
				pass := true
				if on != nil {
					cctx.Binding.Row = row
					var err error
					pass, err = evalBoolC(cctx, onC, on)
					if err != nil {
						return nil, err
					}
				}
				if pass {
					matched = true
					out = append(out, row)
				}
			}
			if !matched {
				out = append(out, append(make(types.Row, lw, lw+rw), rr...))
			}
		}
	default:
		for _, lr := range l.Rows {
			matched := false
			for _, rr := range r.Rows {
				row := append(append(make(types.Row, 0, lw+rw), lr...), rr...)
				pass := true
				if on != nil {
					cctx.Binding.Row = row
					var err error
					pass, err = evalBoolC(cctx, onC, on)
					if err != nil {
						return nil, err
					}
				}
				if pass {
					matched = true
					out = append(out, row)
				}
			}
			if !matched && n.Type == sqlast.JoinLeft {
				out = append(out, append(append(make(types.Row, 0, lw+rw), lr...), make(types.Row, rw)...))
			}
		}
	}
	return &Result{Schema: combined, Rows: out}, nil
}

func andAll(a, b sqlast.Expr) sqlast.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &sqlast.Binary{Op: "AND", L: a, R: b}
}
