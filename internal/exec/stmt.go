package exec

import (
	"fmt"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// ExecStatement runs one parsed statement. DDL/DML return a nil-schema
// result with an affected-row count in Rows[0][0] style; queries return
// their relation.
func (ex *Executor) ExecStatement(stmt sqlast.Statement) (*Result, error) {
	switch x := stmt.(type) {
	case *sqlast.SelectStmt:
		p, err := plan.Build(ex.Cat, x, ex.planOpts())
		if err != nil {
			return nil, err
		}
		return ex.Execute(p, nil)
	case *sqlast.CreateTable:
		if _, err := ex.Cat.Create(x.Name, types.NewSchema(x.Cols...)); err != nil {
			return nil, err
		}
		return &Result{Schema: eval.NewBoundSchema(nil)}, nil
	case *sqlast.InsertStmt:
		return ex.execInsert(x)
	case *sqlast.CreateView:
		return ex.execCreateView(x)
	case *sqlast.RefreshStmt:
		return ex.execRefresh(x)
	case *sqlast.DropStmt:
		return ex.execDrop(x)
	case *sqlast.DeleteStmt:
		return ex.execDelete(x)
	case *sqlast.UpdateStmt:
		return ex.execUpdate(x)
	}
	return nil, fmt.Errorf("unsupported statement %T", stmt)
}

// execDelete removes rows matching the predicate.
func (ex *Executor) execDelete(st *sqlast.DeleteStmt) (*Result, error) {
	t, ok := ex.Cat.Get(st.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", st.Table)
	}
	if _, isMV := ex.Cat.MatViewDef(st.Table); isMV {
		return nil, fmt.Errorf("%q is a materialized view; use REFRESH", st.Table)
	}
	bs := eval.FromSchema(t.Schema)
	ctx := ex.ctx(bs, nil, nil)
	whereC := ex.compileStmtExpr(bs, st.Where)
	kept := t.Rows[:0:0]
	n := 0
	for _, row := range t.Rows {
		keep := true
		if st.Where != nil {
			ctx.Binding.Row = row
			match, err := evalBoolC(ctx, whereC, st.Where)
			if err != nil {
				return nil, err
			}
			keep = !match
		} else {
			keep = false
		}
		if keep {
			kept = append(kept, row)
		} else {
			n++
		}
	}
	t.Rows = kept
	if n > 0 {
		t.Version.Add(1)
	}
	return rowCountResult(n), nil
}

// execUpdate rewrites matching rows copy-on-write: updated rows are cloned
// and the whole row slice is replaced, never written in place, so snapshot
// readers pinned to the previous image keep a frozen row set (and a failing
// UPDATE leaves the table untouched).
func (ex *Executor) execUpdate(st *sqlast.UpdateStmt) (*Result, error) {
	t, ok := ex.Cat.Get(st.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", st.Table)
	}
	if _, isMV := ex.Cat.MatViewDef(st.Table); isMV {
		return nil, fmt.Errorf("%q is a materialized view; use REFRESH", st.Table)
	}
	idx := make([]int, len(st.Cols))
	for i, c := range st.Cols {
		j := t.Schema.Lookup(c)
		if j < 0 {
			return nil, fmt.Errorf("table %q has no column %q", st.Table, c)
		}
		idx[i] = j
	}
	bs := eval.FromSchema(t.Schema)
	ctx := ex.ctx(bs, nil, nil)
	whereC := ex.compileStmtExpr(bs, st.Where)
	exprsC := make([]eval.CompiledExpr, len(st.Exprs))
	for i, e := range st.Exprs {
		exprsC[i] = ex.compileStmtExpr(bs, e)
	}
	n := 0
	next := make([]types.Row, len(t.Rows))
	for ri, row := range t.Rows {
		next[ri] = row
		if st.Where != nil {
			ctx.Binding.Row = row
			match, err := evalBoolC(ctx, whereC, st.Where)
			if err != nil {
				return nil, err
			}
			if !match {
				continue
			}
		}
		ctx.Binding.Row = row
		nr := row.Clone()
		for i, e := range st.Exprs {
			v, err := evalC(ctx, exprsC[i], e)
			if err != nil {
				return nil, err
			}
			cv, err := catalog.Coerce(v, t.Schema.Cols[idx[i]].Kind)
			if err != nil {
				return nil, err
			}
			nr[idx[i]] = cv
		}
		next[ri] = nr
		n++
	}
	if n > 0 {
		t.Rows = next
		t.Version.Add(1)
	}
	return rowCountResult(n), nil
}

// compileStmtExpr compiles a DML expression once per statement against the
// target table's schema, honoring the compiled-eval toggle. Failures return
// the invalid zero value, which routes evalC/evalBoolC to the interpreter.
func (ex *Executor) compileStmtExpr(env *eval.BoundSchema, e sqlast.Expr) eval.CompiledExpr {
	if e == nil || ex.Opts.DisableCompiledEval {
		return eval.CompiledExpr{}
	}
	c, err := eval.Compile(env, e)
	if err != nil {
		return eval.CompiledExpr{}
	}
	return c
}

func rowCountResult(n int) *Result {
	return &Result{Schema: eval.NewBoundSchema([]eval.BoundCol{{Name: "rows"}}),
		Rows: []types.Row{{types.NewInt(int64(n))}}}
}

func (ex *Executor) execInsert(ins *sqlast.InsertStmt) (*Result, error) {
	t, ok := ex.Cat.Get(ins.Table)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", ins.Table)
	}
	colIdx, err := insertColumns(t, ins.Cols)
	if err != nil {
		return nil, err
	}
	insertRow := func(vals types.Row) error {
		row := make(types.Row, t.Schema.Len())
		for i, v := range vals {
			row[colIdx[i]] = v
		}
		return t.Insert(row)
	}
	n := 0
	if ins.Query != nil {
		p, err := plan.Build(ex.Cat, ins.Query, ex.planOpts())
		if err != nil {
			return nil, err
		}
		res, err := ex.Execute(p, nil)
		if err != nil {
			return nil, err
		}
		if len(res.Schema.Cols) != len(colIdx) {
			return nil, fmt.Errorf("INSERT expects %d columns, query returns %d", len(colIdx), len(res.Schema.Cols))
		}
		for _, row := range res.Rows {
			if err := insertRow(row); err != nil {
				return nil, err
			}
			n++
		}
	} else {
		ctx := &eval.Context{Subquery: &runner{ex: ex}}
		for _, exprRow := range ins.Rows {
			if len(exprRow) != len(colIdx) {
				return nil, fmt.Errorf("INSERT expects %d values, got %d", len(colIdx), len(exprRow))
			}
			vals := make(types.Row, len(exprRow))
			for i, e := range exprRow {
				v, err := eval.Eval(ctx, e) // interp-ok: one-shot literal rows, no bound schema to compile against
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			if err := insertRow(vals); err != nil {
				return nil, err
			}
			n++
		}
	}
	return &Result{Schema: eval.NewBoundSchema([]eval.BoundCol{{Name: "rows"}}),
		Rows: []types.Row{{types.NewInt(int64(n))}}}, nil
}

func insertColumns(t *catalog.Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		idx := make([]int, t.Schema.Len())
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.Schema.Lookup(c)
		if j < 0 {
			return nil, fmt.Errorf("table %q has no column %q", t.Name, c)
		}
		idx[i] = j
	}
	return idx, nil
}
