package exec

import (
	"sqlsheet/internal/aggs"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// execGroupBy hash-aggregates the input. Output rows carry the key values
// followed by the aggregate results, in the node's schema order. With no
// grouping keys the result is a single row even over empty input (global
// aggregation).
func (ex *Executor) execGroupBy(n *plan.GroupBy, outer *eval.Binding) (*Result, error) {
	in, err := ex.Execute(n.Input, outer)
	if err != nil {
		return nil, err
	}
	ctx := ex.ctx(in.Schema, nil, outer)

	type group struct {
		keys types.Row
		accs []aggs.Agg
	}
	newGroup := func(keys types.Row) (*group, error) {
		g := &group{keys: keys, accs: make([]aggs.Agg, len(n.Aggs))}
		for i, spec := range n.Aggs {
			a, err := aggs.New(spec.Call.Name, spec.Call.Star)
			if err != nil {
				return nil, err
			}
			g.accs[i] = a
		}
		return g, nil
	}

	groups := map[string]*group{}
	var order []string // deterministic output: first-seen order
	for _, row := range in.Rows {
		ctx.Binding.Row = row
		keys := make(types.Row, len(n.Keys))
		for i, k := range n.Keys {
			v, err := eval.Eval(ctx, k)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		gk := types.Key(keys...)
		g := groups[gk]
		if g == nil {
			g, err = newGroup(keys)
			if err != nil {
				return nil, err
			}
			groups[gk] = g
			order = append(order, gk)
		}
		for i, spec := range n.Aggs {
			if spec.Call.Star {
				g.accs[i].Add()
				continue
			}
			vals := make([]types.Value, len(spec.Call.Args))
			for j, arg := range spec.Call.Args {
				v, err := eval.Eval(ctx, arg)
				if err != nil {
					return nil, err
				}
				vals[j] = v
			}
			g.accs[i].Add(vals...)
		}
	}
	if len(n.Keys) == 0 && len(groups) == 0 {
		g, err := newGroup(nil)
		if err != nil {
			return nil, err
		}
		groups[""] = g
		order = append(order, "")
	}
	rows := make([]types.Row, 0, len(order))
	for _, gk := range order {
		g := groups[gk]
		row := make(types.Row, 0, len(n.Keys)+len(n.Aggs))
		row = append(row, g.keys...)
		for _, a := range g.accs {
			row = append(row, a.Result())
		}
		rows = append(rows, row)
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}
