package exec

import (
	"sqlsheet/internal/aggs"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// group accumulates one grouping key's aggregate states.
type group struct {
	keys types.Row
	accs []aggs.Agg
}

func newGroup(n *plan.GroupBy, keys types.Row) (*group, error) {
	g := &group{keys: keys, accs: make([]aggs.Agg, len(n.Aggs))}
	for i, spec := range n.Aggs {
		a, err := aggs.New(spec.Call.Name, spec.Call.Star)
		if err != nil {
			return nil, err
		}
		g.accs[i] = a
	}
	return g, nil
}

// groupAcc is a hash-aggregation table preserving first-seen group order.
// keyBuf/keyVals/argBuf are per-accumulator scratch so the steady-state row
// loop (existing group, non-null keys) performs no allocations: the group
// probe converts keyBuf in the map index expression, and key/arg values are
// only cloned when a new group is inserted.
type groupAcc struct {
	groups  map[string]*group
	order   []string
	keyBuf  []byte
	keyVals types.Row
	argBuf  []types.Value
}

func newGroupAcc() *groupAcc {
	return &groupAcc{groups: map[string]*group{}}
}

// addRows aggregates rows [lo, hi) of in into acc. When ke is non-nil the
// grouping key bytes come straight from columnar vectors and key values are
// only materialized for first-seen groups; the bytes and values are
// identical to the closure path's.
func (acc *groupAcc) addRows(n *plan.GroupBy, ctx *eval.Context, in *Result, ke *keyEnc, lo, hi int) error {
	for ri := lo; ri < hi; ri++ {
		row := in.Rows[ri]
		ctx.Binding.Row = row
		if ke != nil {
			acc.keyBuf = ke.groupKeyInto(acc.keyBuf, ri)
		} else {
			acc.keyBuf = acc.keyBuf[:0]
			acc.keyVals = acc.keyVals[:0]
			for i, k := range n.Keys {
				v, err := evalC(ctx, pickC(n.KeysC, i), k)
				if err != nil {
					return err
				}
				acc.keyVals = append(acc.keyVals, v)
				acc.keyBuf = types.AppendKey(acc.keyBuf, v)
			}
		}
		g := acc.groups[string(acc.keyBuf)]
		if g == nil {
			var err error
			var keys types.Row
			if ke != nil {
				keys = ke.keyVals(ri)
			} else {
				keys = append(types.Row(nil), acc.keyVals...)
			}
			g, err = newGroup(n, keys)
			if err != nil {
				return err
			}
			gk := string(acc.keyBuf)
			acc.groups[gk] = g
			acc.order = append(acc.order, gk)
		}
		for i, spec := range n.Aggs {
			if spec.Call.Star {
				g.accs[i].Add()
				continue
			}
			vals := acc.argBuf[:0]
			for j, arg := range spec.Call.Args {
				v, err := evalC(ctx, pickC(pickCs(n.AggArgsC, i), j), arg)
				if err != nil {
					return err
				}
				vals = append(vals, v)
			}
			acc.argBuf = vals[:0]
			g.accs[i].Add(vals...)
		}
	}
	return nil
}

// pickCs indexes a slice-of-slices of compiled expressions, tolerating a
// short or nil outer slice (compilation disabled).
func pickCs(css [][]eval.CompiledExpr, i int) []eval.CompiledExpr {
	if i < len(css) {
		return css[i]
	}
	return nil
}

// rows renders the accumulated groups in first-seen order, applying the
// SQL global-aggregation rule (one row even over empty input when there are
// no grouping keys).
func (acc *groupAcc) rows(n *plan.GroupBy) ([]types.Row, error) {
	if len(n.Keys) == 0 && len(acc.groups) == 0 {
		g, err := newGroup(n, nil)
		if err != nil {
			return nil, err
		}
		acc.groups[""] = g
		acc.order = append(acc.order, "")
	}
	rows := make([]types.Row, 0, len(acc.order))
	for _, gk := range acc.order {
		g := acc.groups[gk]
		row := make(types.Row, 0, len(n.Keys)+len(n.Aggs))
		row = append(row, g.keys...)
		for _, a := range g.accs {
			row = append(row, a.Result())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// groupByParallelizable reports whether every aggregate supports partial-
// state merging and no expression hides a subquery. All six built-ins now
// merge (MIN/MAX fold extremes with serial tie behavior), so in practice
// only subqueries force the serial path.
func groupByParallelizable(n *plan.GroupBy) bool {
	for _, spec := range n.Aggs {
		if !aggs.Mergeable(spec.Call.Name) {
			return false
		}
		if anyHasSubquery(spec.Call.Args) {
			return false
		}
	}
	return !anyHasSubquery(n.Keys)
}

// execGroupBy hash-aggregates the input. Output rows carry the key values
// followed by the aggregate results, in the node's schema order, groups in
// first-seen input order.
//
// Large inputs take the morsel path: each morsel builds a partial
// aggregation table, and partials are merged in morsel order. Because
// morsel boundaries and the merge order depend only on the input size —
// never on the worker count — the result (floating-point accumulation
// included) is bit-identical for every Workers setting.
func (ex *Executor) execGroupBy(n *plan.GroupBy, outer *eval.Binding) (*Result, error) {
	in, err := ex.Execute(n.Input, outer)
	if err != nil {
		return nil, err
	}

	ke := ex.vecKeyEnc(in, n.Keys)
	vp := ex.vecGroupPlan(n, in, ke)
	if nm := ex.morselCount(len(in.Rows)); nm > 0 && groupByParallelizable(n) {
		// Scatter-gather: hash grouping keys across the worker fleet and
		// merge per-morsel partials in morsel order — the same fold as the
		// local path below, so a handled result is byte-identical.
		if d := ex.Opts.Dist; d != nil && outer == nil && n.DistNote == plan.DistYes {
			rows, handled, err := d.DistributeGroupBy(ex, n, in)
			if err != nil {
				return nil, err
			}
			if handled {
				return &Result{Schema: n.Schema(), Rows: rows}, nil
			}
		}
		partials := make([]*groupAcc, nm)
		wc := ex.workerCtxs(in.Schema, outer)
		if _, err := ex.forEachMorsel("group-by", len(in.Rows), func(w int, m morsel) error {
			if vp != nil {
				acc, err := vp.accumulate(in, ke, m.Lo, m.Hi)
				if err != nil {
					return err
				}
				partials[m.Idx] = acc
				return nil
			}
			acc := newGroupAcc()
			if err := acc.addRows(n, wc.get(w), in, ke, m.Lo, m.Hi); err != nil {
				return err
			}
			partials[m.Idx] = acc
			return nil
		}); err != nil {
			return nil, err
		}
		// Merge partials in morsel order. Iterating each partial's own
		// first-seen order recovers the global first-seen order: a group's
		// first occurrence lies in the earliest morsel containing it.
		global := newGroupAcc()
		for _, p := range partials {
			for _, gk := range p.order {
				pg := p.groups[gk]
				g := global.groups[gk]
				if g == nil {
					global.groups[gk] = pg
					global.order = append(global.order, gk)
					continue
				}
				for i := range g.accs {
					g.accs[i].(aggs.Merger).Merge(pg.accs[i])
				}
			}
		}
		rows, err := global.rows(n)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: n.Schema(), Rows: rows}, nil
	}

	var acc *groupAcc
	if vp != nil {
		var err error
		if acc, err = vp.accumulate(in, ke, 0, len(in.Rows)); err != nil {
			return nil, err
		}
	} else {
		acc = newGroupAcc()
		ctx := ex.ctx(in.Schema, nil, outer)
		if err := acc.addRows(n, ctx, in, ke, 0, len(in.Rows)); err != nil {
			return nil, err
		}
	}
	rows, err := acc.rows(n)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}
