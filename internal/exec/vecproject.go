package exec

import (
	"sqlsheet/internal/colstore"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// Batch projection: when the input carries columnar provenance and every
// output expression has a supported compute kernel, each morsel evaluates
// whole output vectors (one kernel run per expression) instead of walking
// closures row by row. Output rows are boxed once from the vectors — the
// same values, bit for bit, the closure path would produce — and the output
// publishes a fresh columnar image built from the computed vectors, so a
// downstream filter, group-by or join stays on the vectorized path.
//
// The decision is all-or-nothing over the expression list: one unsupported
// expression keeps the whole operator on the row path, so any evaluation
// error surfaces from the same engine either way (on the kernel domain the
// only runtime error is division by zero, which aborts the statement
// identically at whole-vector and per-row granularity).

// execProjectVec attempts the batch projection. ok=false keeps the row path.
func (ex *Executor) execProjectVec(n *plan.Project, in *Result) (*Result, error, bool) {
	if ex.Opts.DisableVectorizedExec || !vecOK(in) {
		return nil, nil, false
	}
	if len(n.Exprs) == 0 || len(n.ExprsK) != len(n.Exprs) {
		return nil, nil, false
	}
	for _, k := range n.ExprsK {
		if !k.Valid() || k.MinCols() > vecWidth(in) || !k.Supported(in.Img, in.ColMap) {
			return nil, nil, false
		}
	}
	nr := len(in.Rows)
	w := len(n.Exprs)
	rows := make([]types.Row, nr)
	runRange := func(lo, hi int) ([]*eval.ExprVec, error) {
		selBuf := colstore.GetSel(hi - lo)
		defer colstore.PutSel(selBuf)
		sel := *selBuf
		for p := lo; p < hi; p++ {
			sel = append(sel, int32(p))
		}
		*selBuf = sel[:0]
		vecs := make([]*eval.ExprVec, w)
		for j := range n.ExprsK {
			v, err := n.ExprsK[j].Run(in.Img, in.ColMap, in.RowIdx, sel)
			if err != nil {
				return nil, err
			}
			vecs[j] = v
		}
		// One flat backing per morsel: rows are full-length sub-slices, so
		// per-slot writes cannot clobber neighbours.
		flat := make([]types.Value, (hi-lo)*w)
		for i := lo; i < hi; i++ {
			out := flat[(i-lo)*w : (i-lo+1)*w : (i-lo+1)*w]
			for j, v := range vecs {
				out[j] = v.BoxValue(i - lo)
			}
			rows[i] = out
		}
		return vecs, nil
	}
	var parts [][]*eval.ExprVec
	if nm := ex.morselCount(nr); nm > 0 {
		parts = make([][]*eval.ExprVec, nm)
		if _, err := ex.forEachMorsel("project", nr, func(_ int, m morsel) error {
			vecs, err := runRange(m.Lo, m.Hi)
			if err != nil {
				return err
			}
			parts[m.Idx] = vecs
			return nil
		}); err != nil {
			return nil, err, true
		}
	} else {
		vecs, err := runRange(0, nr)
		if err != nil {
			return nil, err, true
		}
		parts = [][]*eval.ExprVec{vecs}
	}
	img := &colstore.Table{NRows: nr, Cols: make([]*colstore.Column, w), Rows: rows}
	for j := 0; j < w; j++ {
		morselVecs := make([]*eval.ExprVec, len(parts))
		for mi := range parts {
			morselVecs[mi] = parts[mi][j]
		}
		img.Cols[j] = concatVecs(morselVecs, nr)
	}
	return &Result{Schema: n.Schema(), Rows: rows, Img: img}, nil, true
}

// concatVecs stitches per-morsel output vectors (all of one kernel, so one
// kind — support is a property of the image, not the morsel) into a single
// dense column, morsels in order.
func concatVecs(vecs []*eval.ExprVec, total int) *colstore.Column {
	if len(vecs) == 1 {
		return vecs[0].Column()
	}
	kind := vecs[0].Kind
	c := &colstore.Column{Kind: kind, N: total}
	if kind == types.KindNull {
		c.Nulls = colstore.NewBitmap(total)
		for i := 0; i < total; i++ {
			c.Nulls.Set(i)
		}
		return c
	}
	switch kind {
	case types.KindInt, types.KindBool:
		c.Ints = make([]int64, 0, total)
		for _, v := range vecs {
			c.Ints = append(c.Ints, v.Ints...)
		}
	case types.KindFloat:
		c.Floats = make([]float64, 0, total)
		for _, v := range vecs {
			c.Floats = append(c.Floats, v.Floats...)
		}
	case types.KindString:
		c.Strs = make([]string, 0, total)
		for _, v := range vecs {
			c.Strs = append(c.Strs, v.Strs...)
		}
	}
	base := 0
	for _, v := range vecs {
		if v.Nulls != nil {
			for k, isn := range v.Nulls {
				if isn {
					if c.Nulls == nil {
						c.Nulls = colstore.NewBitmap(total)
					}
					c.Nulls.Set(base + k)
				}
			}
		}
		base += v.Len()
	}
	return c
}
