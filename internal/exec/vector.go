package exec

import (
	"sqlsheet/internal/colstore"
	"sqlsheet/internal/core"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// This file is the executor side of the vectorized cold path. Scans over
// stored tables obtain a cached columnar image of the table (typed vectors
// with null bitmaps, see internal/colstore) and run plan-attached selection
// kernels over whole morsels of row positions instead of evaluating the
// predicate row by row. Results that remain a pure selection/permutation of
// an image carry provenance (Result.Img/RowIdx/ColMap) so downstream
// filters run kernels too, and join/group-by/partition builds encode their
// keys straight from the vectors.
//
// Everything here is byte-identical to the row-at-a-time engine: kernels
// replicate the compiled-closure semantics exactly (see eval.CompileSelKernel),
// filter outputs are the same row pointers in the same order, and key
// encoding uses colstore.Column.AppendKey, which is pinned to
// types.AppendKey's byte format. Options.DisableVectorizedExec ablates the
// whole layer.

// vecOK reports whether r carries well-formed columnar provenance: Rows[i]
// is image row RowIdx[i] (identity when RowIdx is nil, in which case the
// rows must be exactly the image's rows).
func vecOK(r *Result) bool {
	if r == nil || r.Img == nil {
		return false
	}
	if r.RowIdx != nil {
		return len(r.RowIdx) == len(r.Rows)
	}
	return len(r.Rows) == r.Img.NRows
}

// vecWidth is the number of schema ordinals the provenance can serve.
func vecWidth(r *Result) int {
	if r.ColMap != nil {
		return len(r.ColMap)
	}
	return len(r.Img.Cols)
}

// vecCol returns the image column backing schema ordinal ord, or nil.
func vecCol(r *Result, ord int) *colstore.Column {
	if ord < 0 || ord >= vecWidth(r) {
		return nil
	}
	if r.ColMap != nil {
		ord = r.ColMap[ord]
	}
	return r.Img.Cols[ord]
}

// vecRunnable reports whether kernel k can run over r's provenance.
func vecRunnable(r *Result, k eval.SelKernel) bool {
	return k.Valid() && vecOK(r) && k.MinCols() <= vecWidth(r)
}

// vecCovers reports whether r's provenance serves every schema column (the
// hash join gathers all of them into its output image).
func vecCovers(r *Result) bool {
	n := len(r.Schema.Cols)
	if vecWidth(r) < n {
		return false
	}
	for j := 0; j < n; j++ {
		if vecCol(r, j) == nil {
			return false
		}
	}
	return true
}

// resImgRow maps result position i to its image row (identity when RowIdx
// is nil).
func resImgRow(r *Result, i int) int32 {
	if r.RowIdx != nil {
		return r.RowIdx[i]
	}
	return int32(i)
}

// execScanVec is the vectorized table scan: an unfiltered scan publishes
// the table's columnar image as identity provenance; a filtered scan with a
// kernel runs it morsel-parallel. ok=false keeps the row path.
func (ex *Executor) execScanVec(n *plan.Scan) (*Result, error, bool) {
	if ex.Opts.DisableVectorizedExec {
		return nil, nil, false
	}
	img, tblRows := ex.tableImage(n.Table)
	if img == nil || img.NRows != len(tblRows) {
		return nil, nil, false
	}
	src := &Result{Schema: n.Schema(), Rows: tblRows, Img: img}
	if n.Filter == nil {
		rows := make([]types.Row, len(tblRows))
		copy(rows, tblRows)
		return &Result{Schema: n.Schema(), Rows: rows, Img: img}, nil, true
	}
	if !vecRunnable(src, n.FilterK) {
		return nil, nil, false
	}
	res, err := ex.vecFilter(src, n.FilterK, n.Schema())
	return res, err, true
}

// vecFilter selects from in's rows with kernel k. The output rows are the
// same row pointers the closure filter would emit, in the same order
// (positions are scanned ascending per morsel and morsels stitched in
// order), and carry composed provenance.
func (ex *Executor) vecFilter(in *Result, k eval.SelKernel, schema *eval.BoundSchema) (*Result, error) {
	n := len(in.Rows)
	runRange := func(lo, hi int) []int32 {
		selBuf := colstore.GetSel(hi - lo)
		defer colstore.PutSel(selBuf)
		sel := *selBuf
		for p := lo; p < hi; p++ {
			sel = append(sel, int32(p))
		}
		*selBuf = sel[:0]
		out := make([]int32, 0, hi-lo)
		return k.Run(in.Img, in.ColMap, in.RowIdx, sel, out)
	}
	var parts [][]int32
	if nm := ex.morselCount(n); nm > 0 {
		parts = make([][]int32, nm)
		if _, err := ex.forEachMorsel("filter", n, func(_ int, m morsel) error {
			parts[m.Idx] = runRange(m.Lo, m.Hi)
			return nil
		}); err != nil {
			return nil, err
		}
	} else {
		parts = [][]int32{runRange(0, n)}
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	// total==0 leaves Rows nil, matching the serial engine's append-built
	// empty result.
	var rows []types.Row
	var ridx []int32
	if total > 0 {
		rows = make([]types.Row, 0, total)
		ridx = make([]int32, 0, total)
		for _, part := range parts {
			for _, p := range part {
				rows = append(rows, in.Rows[p])
				if in.RowIdx != nil {
					ridx = append(ridx, in.RowIdx[p])
				} else {
					ridx = append(ridx, p)
				}
			}
		}
	} else {
		ridx = []int32{}
	}
	return &Result{Schema: schema, Rows: rows, Img: in.Img, RowIdx: ridx, ColMap: in.ColMap}, nil
}

// plainOrdinals resolves every expression to a schema ordinal, or reports
// false if any is not a plain unambiguous column reference.
func plainOrdinals(env *eval.BoundSchema, es []sqlast.Expr) ([]int, bool) {
	if len(es) == 0 {
		return nil, false
	}
	ords := make([]int, len(es))
	for i, e := range es {
		ord, ok := eval.PlainOrdinal(env, e)
		if !ok {
			return nil, false
		}
		ords[i] = ord
	}
	return ords, true
}

// keyEnc encodes composite join/group keys straight from columnar vectors.
// A nil *keyEnc means the caller keeps the closure-based encoding path.
type keyEnc struct {
	cols []*colstore.Column
	ridx []int32
}

// vecKeyEnc builds a columnar key encoder for keys over res, or nil when
// vectorized execution is off, res carries no usable provenance, or any key
// is not a plain column reference.
func (ex *Executor) vecKeyEnc(res *Result, keys []sqlast.Expr) *keyEnc {
	if ex.Opts.DisableVectorizedExec || !vecOK(res) {
		return nil
	}
	ords, ok := plainOrdinals(res.Schema, keys)
	if !ok {
		return nil
	}
	cols := make([]*colstore.Column, len(ords))
	for i, ord := range ords {
		c := vecCol(res, ord)
		if c == nil {
			return nil
		}
		cols[i] = c
	}
	return &keyEnc{cols: cols, ridx: res.RowIdx}
}

// imgRow maps result position i to its image row.
func (k *keyEnc) imgRow(i int) int {
	if k.ridx != nil {
		return int(k.ridx[i])
	}
	return i
}

// keyInto mirrors evalKeysInto: it appends the composite key for result
// position i to buf[:0]; ok is false when any key value is NULL.
func (k *keyEnc) keyInto(buf []byte, i int) ([]byte, bool) {
	r := k.imgRow(i)
	buf = buf[:0]
	for _, c := range k.cols {
		if c.IsNull(r) {
			return buf, false
		}
		buf = c.AppendKey(buf, r)
	}
	return buf, true
}

// groupKeyInto appends the composite grouping key for result position i to
// buf[:0]. Unlike join keys, grouping keys include NULLs.
func (k *keyEnc) groupKeyInto(buf []byte, i int) []byte {
	r := k.imgRow(i)
	buf = buf[:0]
	for _, c := range k.cols {
		buf = c.AppendKey(buf, r)
	}
	return buf
}

// vecColSource exposes res's leading nOrds columns as a core.ColSource for
// the spreadsheet partition build, or nil when vectorized execution is off
// or res carries no columnar provenance.
func (ex *Executor) vecColSource(res *Result, nOrds int) *core.ColSource {
	if ex.Opts.DisableVectorizedExec || !vecOK(res) {
		return nil
	}
	if nOrds > vecWidth(res) {
		nOrds = vecWidth(res)
	}
	if nOrds <= 0 {
		return nil
	}
	cols := make([]*colstore.Column, nOrds)
	any := false
	for i := range cols {
		if c := vecCol(res, i); c != nil {
			cols[i] = c
			any = true
		}
	}
	if !any {
		return nil
	}
	return &core.ColSource{Cols: cols, RowIdx: res.RowIdx}
}

// keyVals materializes the grouping key values for result position i (only
// called when a new group is inserted, so the steady-state loop stays free
// of per-row value construction).
func (k *keyEnc) keyVals(i int) types.Row {
	r := k.imgRow(i)
	out := make(types.Row, len(k.cols))
	for j, c := range k.cols {
		out[j] = c.Value(r) // interp-ok: boxed once per new group, not per row
	}
	return out
}
