package exec

import (
	"sync"
	"testing"

	"sqlsheet/internal/types"
)

func TestMakeMorsels(t *testing.T) {
	cases := []struct {
		n, size int
		want    []morsel
	}{
		{0, 4, []morsel{}},
		{3, 4, []morsel{{0, 0, 3}}},
		{4, 4, []morsel{{0, 0, 4}}},
		{10, 4, []morsel{{0, 0, 4}, {1, 4, 8}, {2, 8, 10}}},
	}
	for _, c := range cases {
		got := makeMorsels(c.n, c.size)
		if len(got) != len(c.want) {
			t.Fatalf("makeMorsels(%d, %d) = %v, want %v", c.n, c.size, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("makeMorsels(%d, %d)[%d] = %v, want %v", c.n, c.size, i, got[i], c.want[i])
			}
		}
	}
}

func TestMorselCountThreshold(t *testing.T) {
	ex := New(nil, Options{MorselSize: 16})
	if got := ex.morselCount(31); got != 0 {
		t.Errorf("below threshold: morselCount(31) = %d, want 0", got)
	}
	if got := ex.morselCount(32); got != 2 {
		t.Errorf("at threshold: morselCount(32) = %d, want 2", got)
	}
	if got := ex.morselCount(33); got != 3 {
		t.Errorf("morselCount(33) = %d, want 3", got)
	}
}

func TestBudgetTryAcquire(t *testing.T) {
	b := newBudget(3)
	if got := b.tryAcquire(2); got != 2 {
		t.Fatalf("tryAcquire(2) = %d", got)
	}
	// Only one slot left; over-asking must not block.
	if got := b.tryAcquire(5); got != 1 {
		t.Fatalf("tryAcquire(5) = %d, want 1", got)
	}
	if got := b.tryAcquire(1); got != 0 {
		t.Fatalf("drained pool granted %d", got)
	}
	b.release(3)
	if got := b.tryAcquire(4); got != 3 {
		t.Fatalf("after release: tryAcquire(4) = %d, want 3", got)
	}
	b.release(3)

	// Concurrent acquisition never over-grants.
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := b.tryAcquire(2)
			mu.Lock()
			total += got
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != 3 {
		t.Fatalf("concurrent grants total %d, want 3", total)
	}
}

func TestStitchPreservesOrder(t *testing.T) {
	r := func(i int) types.Row { return types.Row{types.NewInt(int64(i))} }
	parts := [][]types.Row{{r(0), r(1)}, nil, {r(2)}, {}, {r(3)}}
	got := stitch(parts)
	if len(got) != 4 {
		t.Fatalf("stitch len = %d", len(got))
	}
	for i, row := range got {
		if row[0].I != int64(i) {
			t.Errorf("stitch[%d] = %v", i, row)
		}
	}
	if stitch([][]types.Row{nil, {}}) != nil {
		t.Error("stitch of empty parts should be nil")
	}
}
