package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// TestSortedPermStableAndSorted checks the chunked parallel sort against the
// definition of a stable sort: output sorted by key, ties in input order,
// and identical across worker counts, morsel thresholds and the serial
// ablation.
func TestSortedPermStableAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 15, 16, 17, 160, 1000} {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(7) // heavy duplication exercises stability
		}
		cmp := func(a, b int) int { return keys[a] - keys[b] }
		ref := New(nil, Options{MorselSize: 8, Workers: 1, DisableParallelSort: true}).
			sortedPerm("sort", n, cmp)
		for _, w := range []int{2, 8} {
			ex := New(nil, Options{MorselSize: 8, Workers: w})
			perm := ex.sortedPerm("sort", n, cmp)
			if len(perm) != n {
				t.Fatalf("n=%d w=%d: len %d", n, w, len(perm))
			}
			for i := range perm {
				if perm[i] != ref[i] {
					t.Fatalf("n=%d w=%d: perm[%d]=%d, serial has %d", n, w, i, perm[i], ref[i])
				}
			}
		}
		// The serial reference itself must be a stable sort.
		seen := make([]bool, n)
		for i, p := range ref {
			seen[p] = true
			if i > 0 {
				if keys[ref[i-1]] > keys[p] {
					t.Fatalf("n=%d: not sorted at %d", n, i)
				}
				if keys[ref[i-1]] == keys[p] && ref[i-1] > p {
					t.Fatalf("n=%d: unstable at %d", n, i)
				}
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: index %d missing from permutation", n, i)
			}
		}
	}
}

// sortEnv runs statements with one executor configuration per statement.
func sortEnv(t testing.TB) (func(opts Options, sql string) (*Result, error), *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	run := func(opts Options, sql string) (*Result, error) {
		stmts, err := parser.Parse(sql)
		if err != nil {
			return nil, err
		}
		var last *Result
		for _, s := range stmts {
			ex := New(cat, opts)
			ex.Opts.PlanOpts = &plan.Options{Exec: ex}
			last, err = ex.ExecStatement(s)
			if err != nil {
				return nil, err
			}
		}
		return last, nil
	}
	return run, cat
}

func fillSortTable(t testing.TB, run func(Options, string) (*Result, error), n int) {
	t.Helper()
	if _, err := run(Options{}, `CREATE TABLE t (a INT, b FLOAT, c TEXT)`); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for lo := 0; lo < n; lo += 100 {
		var sb []byte
		sb = append(sb, "INSERT INTO t VALUES "...)
		for i := lo; i < lo+100 && i < n; i++ {
			if i > lo {
				sb = append(sb, ',')
			}
			b := "NULL"
			if rng.Intn(12) != 0 {
				b = fmt.Sprintf("%.6f", rng.NormFloat64()*50)
			}
			sb = append(sb, fmt.Sprintf("(%d, %s, 'c%02d')", rng.Intn(40), b, rng.Intn(9))...)
		}
		if _, err := run(Options{}, string(sb)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExecSortConfigsAgree runs ORDER BY under every data-movement
// configuration — serial, parallel, external (async and sync spill), and the
// serial-sort ablation — and requires byte-identical rows.
func TestExecSortConfigsAgree(t *testing.T) {
	run, _ := sortEnv(t)
	fillSortTable(t, run, 700)
	queries := []string{
		`SELECT a, b, c FROM t ORDER BY b DESC, a`,
		`SELECT a, b, c FROM t ORDER BY c, b`,
		`SELECT a, b, c FROM t ORDER BY a`, // duplicate-heavy: stability visible
	}
	configs := []Options{
		{Workers: 1, MorselSize: 16},
		{Workers: 8, MorselSize: 16},
		{Workers: 8, MorselSize: 16, DisableParallelSort: true},
		{Workers: 8, MorselSize: 16, MemoryBudget: 2048},
		{Workers: 8, MorselSize: 16, MemoryBudget: 2048, DisableAsyncSpill: true},
		{Workers: 1, MorselSize: 16, MemoryBudget: 2048, DisableParallelSort: true},
	}
	for _, q := range queries {
		var ref []string
		for ci, opts := range configs {
			res, err := run(opts, q)
			if err != nil {
				t.Fatalf("config %d: %v\n%s", ci, err, q)
			}
			got := make([]string, len(res.Rows))
			for i, r := range res.Rows {
				got[i] = types.Key(r...)
			}
			if ci == 0 {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				t.Fatalf("config %d: %d rows, serial has %d\n%s", ci, len(got), len(ref), q)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("config %d row %d differs from serial\n%s", ci, i, q)
				}
			}
		}
	}
}

// TestExternalSortSpills confirms the budgeted path actually moves rows
// through the spill store (otherwise TestExecSortConfigsAgree would be
// vacuously comparing in-memory sorts).
func TestExternalSortSpills(t *testing.T) {
	run, cat := sortEnv(t)
	fillSortTable(t, run, 700)
	ex := New(cat, Options{Workers: 4, MorselSize: 16, MemoryBudget: 2048})
	ex.Opts.PlanOpts = &plan.Options{Exec: ex}
	stmt, err := parser.ParseQuery(`SELECT a, b, c FROM t ORDER BY b, c`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.ExecStatement(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 700 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if ex.SheetStats.BytesSpilled == 0 {
		t.Error("external sort reported no spilled bytes; the budgeted path did not engage")
	}
	found := false
	for _, op := range ex.ExecStats.Ops {
		if op.Op == "sort-spill" && op.Rows == 700 && op.Morsels > 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no sort-spill operator stat recorded: %+v", ex.ExecStats.Ops)
	}
}

// TestSortKeyExtractionAllocs pins ORDER BY's per-row allocation behaviour:
// sort keys live in one flat array, so executing the Sort node allocates
// O(runs + workers), not O(rows). The former per-row key slices alone would
// blow this bound by two orders of magnitude.
func TestSortKeyExtractionAllocs(t *testing.T) {
	cat := catalog.New()
	ex := New(cat, Options{MorselSize: 256, Workers: 2})
	ex.Opts.PlanOpts = &plan.Options{Exec: ex}
	setup := `CREATE TABLE t (a INT, b FLOAT)`
	stmts, err := parser.Parse(setup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.ExecStatement(stmts[0]); err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for lo := 0; lo < n; lo += 500 {
		sql := "INSERT INTO t VALUES "
		for i := lo; i < lo+500; i++ {
			if i > lo {
				sql += ","
			}
			sql += fmt.Sprintf("(%d, %d.5)", i%97, (i*31)%89)
		}
		ins, err := parser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.ExecStatement(ins[0]); err != nil {
			t.Fatal(err)
		}
	}
	buildPlan := func(sql string) plan.Node {
		q, err := parser.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		node, err := plan.Build(cat, q, ex.Opts.PlanOpts)
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	sorted := buildPlan(`SELECT a, b FROM t ORDER BY a, b DESC`)
	if _, ok := sorted.(*plan.Sort); !ok {
		t.Fatalf("plan root is %T, want *plan.Sort", sorted)
	}
	unsorted := buildPlan(`SELECT a, b FROM t`)
	measure := func(node plan.Node) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := ex.Execute(node, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	// The projection beneath the sort allocates one output row per input
	// row; subtracting the unsorted plan isolates the Sort node itself.
	delta := measure(sorted) - measure(unsorted)
	// Flat keys + permutation + run sorting + merge: small and independent
	// of the row count. 200 leaves headroom while still catching any
	// per-row regression (the former per-row key slices cost n = 4000).
	if delta > 200 {
		t.Errorf("Sort node over %d rows adds %.0f allocations per execution; want O(runs), not O(rows)", n, delta)
	}
}
