package exec

import (
	"sync/atomic"
	"time"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// Parallel external merge sort. ORDER BY (and window partition ordering) run
// as a chunked sort: workers stable-sort morsel-sized runs with the same
// bottom-up merge sort the serial path uses, then a loser-tree multiway merge
// interleaves the runs. Run boundaries are a pure function of the input size
// and morsel size — never the worker count — and ties break toward the lower
// run (runs are input-order chunks), so the merged order is byte-identical to
// one whole-input stable sort for every Workers setting.
//
// When a memory budget is configured and the input's estimated footprint
// exceeds it, the sorted runs spill through a blockstore.SpillStore (async
// eviction unless disabled) and the merge streams them back block by block —
// the classic external sort, bounded by the budget instead of the result
// size.

// sortedPerm returns the permutation of [0,n) that stable-sorts indices by
// cmp (ties keep input order). Large inputs sort as parallel runs merged by a
// loser tree; DisableParallelSort (or a small input) falls back to one serial
// stable sort. Either path yields identical bytes.
func (ex *Executor) sortedPerm(op string, n int, cmp func(a, b int) int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if n < 2 {
		return perm
	}
	size := ex.morselSize()
	if ex.Opts.DisableParallelSort || n < 2*size {
		stableSort(perm, cmp)
		return perm
	}
	start := time.Now()
	runs := makeMorsels(n, size)
	var next atomic.Int64
	w := ex.runPool(len(runs), func(int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(runs) {
				return
			}
			stableSort(perm[runs[i].Lo:runs[i].Hi], cmp)
		}
	})
	out := mergeRuns(perm, runs, cmp)
	ex.recordOp(OpStat{Op: op, Rows: n, Morsels: len(runs), Workers: w, Elapsed: time.Since(start)})
	return out
}

// mergeRuns interleaves sorted runs of perm with a loser tree.
func mergeRuns(perm []int, runs []morsel, cmp func(a, b int) int) []int {
	pos := make([]int, len(runs))
	for i, r := range runs {
		pos[i] = r.Lo
	}
	lt := newLoserTree(len(runs),
		func(r int) bool { return pos[r] >= runs[r].Hi },
		func(a, b int) int { return cmp(perm[pos[a]], perm[pos[b]]) })
	out := make([]int, 0, len(perm))
	for {
		r := lt.winner()
		if r < 0 {
			break
		}
		out = append(out, perm[pos[r]])
		pos[r]++
		lt.replay(r)
	}
	return out
}

// loserTree is a tournament tree over k runs: winner() is the run whose head
// element comes next, replay(r) restores the invariant after run r advances.
// Each replay costs one comparison per tree level (log k), against k-1 for a
// naive scan — the difference between O(n log k) and O(nk) merges.
type loserTree struct {
	k     int
	node  []int // node[0] = winner; node[i>=1] = loser of the match at i
	empty func(r int) bool
	cmp   func(a, b int) int // compares the heads of two non-empty runs
}

func newLoserTree(k int, empty func(int) bool, cmp func(int, int) int) *loserTree {
	lt := &loserTree{k: k, node: make([]int, k), empty: empty, cmp: cmp}
	for i := range lt.node {
		lt.node[i] = -1
	}
	for r := k - 1; r >= 0; r-- {
		lt.replay(r)
	}
	return lt
}

// winner returns the run with the globally smallest head, or -1 when all
// runs are exhausted.
func (lt *loserTree) winner() int {
	if w := lt.node[0]; w >= 0 && !lt.empty(w) {
		return w
	}
	return -1
}

// replay pushes run r from its leaf toward the root, playing the loser
// stored at each match: the winner continues up, the loser stays. During
// initialization (leaves replayed from k-1 down to 0) an empty seat parks the
// contender and stops — by the final replay every seat on the way up is
// filled, so the last pass reaches the root and crowns the overall winner.
func (lt *loserTree) replay(r int) {
	winner := r
	for i := (lt.k + r) / 2; i >= 1; i /= 2 {
		if lt.node[i] < 0 {
			lt.node[i] = winner
			return
		}
		if lt.beats(lt.node[i], winner) {
			winner, lt.node[i] = lt.node[i], winner
		}
	}
	lt.node[0] = winner
}

// beats reports whether run a's head must be emitted before run b's.
// Exhausted runs (and empty seats) always lose; ties go to the lower run
// index, which preserves global stability because runs are input-order
// chunks.
func (lt *loserTree) beats(a, b int) bool {
	if a < 0 || lt.empty(a) {
		return false
	}
	if b < 0 || lt.empty(b) {
		return true
	}
	c := lt.cmp(a, b)
	return c < 0 || (c == 0 && a < b)
}

func (ex *Executor) execSort(n *plan.Sort, outer *eval.Binding) (*Result, error) {
	in, err := ex.Execute(n.Input, outer)
	if err != nil {
		return nil, err
	}
	nr, nk := len(in.Rows), len(n.Items)
	// One flat backing array for every row's keys: the former per-row
	// []types.Value slices were the dominant ORDER BY allocation.
	keys := make([]types.Value, nr*nk)
	extract := func(ctx *eval.Context, m morsel) error {
		for i := m.Lo; i < m.Hi; i++ {
			ctx.Binding.Row = in.Rows[i]
			for j, it := range n.Items {
				v, err := evalC(ctx, pickC(n.ItemsC, j), it.Expr)
				if err != nil {
					return err
				}
				keys[i*nk+j] = v
			}
		}
		return nil
	}
	if nk > 0 && nr > 0 {
		exprs := make([]sqlast.Expr, nk)
		for j, it := range n.Items {
			exprs[j] = it.Expr
		}
		if anyHasSubquery(exprs) {
			// Subqueries keep the serial path (shared runner state).
			if err := extract(ex.ctx(in.Schema, nil, outer), morsel{Lo: 0, Hi: nr}); err != nil {
				return nil, err
			}
		} else {
			wcs := ex.workerCtxs(in.Schema, outer)
			used, err := ex.forEachMorsel("sort-keys", nr, func(w int, m morsel) error {
				return extract(wcs.get(w), m)
			})
			if err != nil {
				return nil, err
			}
			if !used {
				if err := extract(wcs.get(0), morsel{Lo: 0, Hi: nr}); err != nil {
					return nil, err
				}
			}
		}
	}
	cmp := func(a, b int) int {
		ka, kb := keys[a*nk:a*nk+nk], keys[b*nk:b*nk+nk]
		for j := 0; j < nk; j++ {
			c := types.Compare(ka[j], kb[j])
			if n.Items[j].Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
	if ex.spillSort(nr, len(in.Schema.Cols)) {
		rows, err := ex.externalSort(in.Rows, cmp)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: n.Schema(), Rows: rows}, nil
	}
	perm := ex.sortedPerm("sort", nr, cmp)
	rows := make([]types.Row, nr)
	for i, p := range perm {
		rows[i] = in.Rows[p]
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}

// spillSort decides whether ORDER BY runs as an external sort: a memory
// budget is configured and the input's estimated footprint exceeds it. The
// estimate depends only on row and column counts, so the decision — like
// every other parallel-path decision — is independent of Workers.
func (ex *Executor) spillSort(nr, ncols int) bool {
	if ex.Opts.MemoryBudget <= 0 || nr < 2 {
		return false
	}
	const rowOverhead, colBytes = 48, 24
	est := int64(nr) * int64(rowOverhead+ncols*colBytes)
	return est > ex.Opts.MemoryBudget
}

// externalSort sorts rows as spilled runs merged by a loser tree. Each run is
// stable-sorted in parallel (same chunking as sortedPerm), appended to a
// budget-bounded spill store in sorted order — so the merge's Gets walk each
// run's blocks sequentially, the access pattern the store's read-ahead
// recognizes — and streamed back through the merge. The returned rows are
// clones; the store (and its file) is released before returning.
func (ex *Executor) externalSort(rows []types.Row, cmp func(a, b int) int) ([]types.Row, error) {
	start := time.Now()
	nr := len(rows)
	runs := makeMorsels(nr, ex.morselSize())
	perm := make([]int, nr)
	for i := range perm {
		perm[i] = i
	}
	var next atomic.Int64
	// Serial ablation sorts the same chunked runs (identical bytes), just
	// without the worker pool.
	w := 1
	sortRun := func(i int) { stableSort(perm[runs[i].Lo:runs[i].Hi], cmp) }
	if ex.Opts.DisableParallelSort {
		for i := range runs {
			sortRun(i)
		}
	} else {
		w = ex.runPool(len(runs), func(int) {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					return
				}
				sortRun(i)
			}
		})
	}
	store := blockstore.NewSpill(blockstore.Config{
		BudgetBytes:  ex.Opts.MemoryBudget,
		Dir:          ex.Opts.SpillDir,
		RowsPerBlock: 16,
		Async:        !ex.Opts.DisableAsyncSpill,
	})
	defer store.Close()
	// Spill each run in sorted order. Appends are sequential per store, so
	// runs are laid out contiguously; ids[r] addresses run r's rows.
	ids := make([][]blockstore.RowID, len(runs))
	for r, m := range runs {
		ids[r] = make([]blockstore.RowID, 0, m.Hi-m.Lo)
		for _, p := range perm[m.Lo:m.Hi] {
			ids[r] = append(ids[r], store.Append(rows[p]))
		}
	}
	pos := make([]int, len(runs))
	lt := newLoserTree(len(runs),
		func(r int) bool { return pos[r] >= len(ids[r]) },
		func(a, b int) int {
			return cmp(perm[runs[a].Lo+pos[a]], perm[runs[b].Lo+pos[b]])
		})
	out := make([]types.Row, 0, nr)
	for {
		r := lt.winner()
		if r < 0 {
			break
		}
		out = append(out, store.Get(ids[r][pos[r]]).Clone())
		pos[r]++
		lt.replay(r)
	}
	st := store.Stats()
	ex.mu.Lock()
	ex.SheetStats.Add(st)
	ex.mu.Unlock()
	ex.recordOp(OpStat{Op: "sort-spill", Rows: nr, Morsels: len(runs), Workers: w, Elapsed: time.Since(start)})
	return out, nil
}
