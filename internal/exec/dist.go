package exec

import (
	"sqlsheet/internal/aggs"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// Distributor is the scatter-gather coordinator's hook into the executor
// (implemented by internal/shard; installed via DB.SetDistributor). The
// executor consults it only for nodes the planner marked distributable
// (DistNote == plan.DistYes) and only for uncorrelated evaluations; the
// implementation may still decline at run time (input too small, workers
// unreachable, rows not page-encodable), in which case handled is false and
// the executor falls back to local execution. When handled, the returned
// rows must be byte-identical to what the local path would produce.
type Distributor interface {
	// DistributeSheet evaluates a spreadsheet node's model over the already
	// materialized working rows. buckets is the coordinator-side bucket
	// count — the merge must reassemble partitions in local bucket/frame
	// order so row order matches a single-process run.
	DistributeSheet(ex *Executor, n *plan.Spreadsheet, inRows []types.Row, buckets int) (rows []types.Row, handled bool, err error)
	// DistributeGroupBy evaluates a group-by over the already executed
	// input. The merge must fold per-morsel partials in morsel order
	// (ex.MorselSpans) to stay bit-identical to the local morsel path.
	DistributeGroupBy(ex *Executor, n *plan.GroupBy, in *Result) (rows []types.Row, handled bool, err error)
}

// MorselSpans returns the operator morsel boundaries ([lo, hi) row spans, in
// order) the local group-by would use over n input rows. Boundaries are a
// pure function of input size and MorselSize — never of worker or shard
// count — which is what makes per-morsel partial merging byte-identical.
func (ex *Executor) MorselSpans(n int) [][2]int {
	ms := makeMorsels(n, ex.morselSize())
	spans := make([][2]int, len(ms))
	for i, m := range ms {
		spans[i] = [2]int{m.Lo, m.Hi}
	}
	return spans
}

// GroupPartial is one aggregation partial: groups in first-seen order, each
// with its key values and accumulator states. Workers compute partials per
// morsel (ComputeGroupPartial), ship states through aggs.AppendState, and
// the coordinator reassembles and merges them with MergeGroupPartials.
type GroupPartial struct {
	Order []string    // encoded grouping key (types.AppendKey) per group
	Keys  []types.Row // first-seen key values per group
	Accs  [][]aggs.Agg
}

// ComputeGroupPartial aggregates rows [lo, hi) of in for node n into a fresh
// partial. It uses the row-at-a-time path, whose accumulator states are
// bit-identical to the vectorized path's (the aggs batch contract).
func (ex *Executor) ComputeGroupPartial(n *plan.GroupBy, in *Result, lo, hi int) (*GroupPartial, error) {
	acc := newGroupAcc()
	ctx := ex.ctx(in.Schema, nil, nil)
	if err := acc.addRows(n, ctx, in, nil, lo, hi); err != nil {
		return nil, err
	}
	p := &GroupPartial{
		Order: acc.order,
		Keys:  make([]types.Row, len(acc.order)),
		Accs:  make([][]aggs.Agg, len(acc.order)),
	}
	for i, gk := range acc.order {
		g := acc.groups[gk]
		p.Keys[i] = g.keys
		p.Accs[i] = g.accs
	}
	return p, nil
}

// NewGroupAggs constructs fresh accumulators for n's aggregate list, in
// spec order — the receptacles for aggs.LoadState on the coordinator.
func NewGroupAggs(n *plan.GroupBy) ([]aggs.Agg, error) {
	g, err := newGroup(n, nil)
	if err != nil {
		return nil, err
	}
	return g.accs, nil
}

// MergeGroupPartials folds partials in slice order (the coordinator passes
// one reassembled partial per morsel, in morsel order) and renders the final
// rows. The loop replicates execGroupBy's local merge exactly: a group's
// first-seen partial state is adopted wholesale, later partials are
// Merge-folded into it, and output order is global first-seen order. The
// empty-input global-aggregation rule (one row of fresh accumulator results
// when there are no grouping keys) also applies here.
func MergeGroupPartials(n *plan.GroupBy, partials []*GroupPartial) ([]types.Row, error) {
	global := newGroupAcc()
	for _, p := range partials {
		for i, gk := range p.Order {
			g := global.groups[gk]
			if g == nil {
				global.groups[gk] = &group{keys: p.Keys[i], accs: p.Accs[i]}
				global.order = append(global.order, gk)
				continue
			}
			for j := range g.accs {
				g.accs[j].(aggs.Merger).Merge(p.Accs[i][j])
			}
		}
	}
	return global.rows(n)
}
