package exec

import (
	"sqlsheet/internal/core"
	"sqlsheet/internal/plan"
)

// StructureCache is implemented by the serving-path plan cache (the DB
// layer): version-validated reuse of spreadsheet access structures across
// executions of one cached plan. Both methods deal in pristine — built but
// never evaluated — partition sets; the executor clones before evaluating.
type StructureCache interface {
	// Lookup returns the cached pristine structure for a plan node.
	Lookup(n *plan.Spreadsheet) (*core.PartitionSet, bool)
	// Store publishes a pristine copy of a freshly built structure. The
	// implementation decides whether the node is eligible (only nodes owned
	// by the cached plan are; executor-private subplans are transient).
	Store(n *plan.Spreadsheet, ps *core.PartitionSet)
}

// CacheStats reports the serving-path cache's involvement in one statement
// (the flags and StructuresReused) together with the cache's cumulative
// counters at completion time. Zero when the cache is disabled.
type CacheStats struct {
	// PlanHit reports that this statement reused a cached plan (a result
	// hit implies a plan hit: the result was produced by the cached plan).
	PlanHit bool
	// ResultHit reports that the statement was answered from the cached
	// result set without executing.
	ResultHit bool
	// StructuresReused counts spreadsheet access structures this statement
	// cloned from cache instead of rebuilding.
	StructuresReused int

	// Cumulative cache counters (lifetime of the DB's cache).
	Hits          int64 // plan lookups answered from cache
	Misses        int64 // plan lookups that had to build
	ResultHits    int64 // statements answered from cached results
	StructReuses  int64 // access structures served for cloning
	Evictions     int64 // entries dropped by the byte-budget LRU
	Invalidations int64 // entries dropped because a dependency version moved
}
