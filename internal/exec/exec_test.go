package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

func newEnv(t testing.TB) (*catalog.Catalog, func(sql string, opts *plan.Options) (*Result, error)) {
	t.Helper()
	cat := catalog.New()
	run := func(sql string, opts *plan.Options) (*Result, error) {
		stmts, err := parser.Parse(sql)
		if err != nil {
			return nil, err
		}
		var last *Result
		for _, s := range stmts {
			ex := New(cat, Options{PlanOpts: opts})
			if opts == nil {
				ex.Opts.PlanOpts = &plan.Options{Exec: ex}
			}
			last, err = ex.ExecStatement(s)
			if err != nil {
				return nil, err
			}
		}
		return last, nil
	}
	return cat, run
}

func mustRun(t testing.TB, run func(string, *plan.Options) (*Result, error), sql string) *Result {
	t.Helper()
	res, err := run(sql, nil)
	if err != nil {
		t.Fatalf("%v\nsql: %s", err, sql)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	_, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE t (a INT, b TEXT)`)
	mustRun(t, run, `INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	res := mustRun(t, run, `SELECT a, b FROM t ORDER BY a DESC`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Column-list insert with reordering.
	mustRun(t, run, `INSERT INTO t (b, a) VALUES ('z', 3)`)
	res = mustRun(t, run, `SELECT b FROM t WHERE a = 3`)
	if res.Rows[0][0].S != "z" {
		t.Fatalf("reordered insert broken: %v", res.Rows)
	}
	if _, err := run(`INSERT INTO t VALUES (1)`, nil); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := run(`INSERT INTO t (a, nope) VALUES (1, 2)`, nil); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := run(`INSERT INTO nope VALUES (1)`, nil); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	_, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE t (a INT)`)
	res := mustRun(t, run, `SELECT COUNT(*), SUM(a), MIN(a) FROM t`)
	if len(res.Rows) != 1 {
		t.Fatalf("global agg must return one row, got %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].Int() != 0 || !r[1].IsNull() || !r[2].IsNull() {
		t.Errorf("empty aggs = %v", r)
	}
	// Grouped aggregate over empty input returns no rows.
	res = mustRun(t, run, `SELECT a, COUNT(*) FROM t GROUP BY a`)
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty = %v", res.Rows)
	}
}

func TestScalarSubqueryErrors(t *testing.T) {
	_, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)`)
	if _, err := run(`SELECT (SELECT a FROM t) FROM t`, nil); err == nil || !strings.Contains(err.Error(), "rows") {
		t.Errorf("multi-row scalar subquery: %v", err)
	}
	res := mustRun(t, run, `SELECT (SELECT a FROM t WHERE a = 9) FROM t LIMIT 1`)
	if !res.Rows[0][0].IsNull() {
		t.Error("empty scalar subquery must be NULL")
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	_, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE a (x INT); CREATE TABLE b (y INT)`)
	mustRun(t, run, `INSERT INTO a VALUES (1), (NULL); INSERT INTO b VALUES (1), (NULL)`)
	for _, m := range []plan.JoinMethod{plan.JoinHash, plan.JoinNestedLoop} {
		res, err := run(`SELECT x, y FROM a JOIN b ON x = y`, &plan.Options{ForceJoin: m})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("%v: NULL keys matched: %v", m, res.Rows)
		}
	}
	// Outer join keeps the NULL-keyed preserved row.
	res := mustRun(t, run, `SELECT x, y FROM a LEFT JOIN b ON x = y ORDER BY x`)
	if len(res.Rows) != 2 || !res.Rows[1][1].IsNull() {
		t.Errorf("left join with NULL key: %v", res.Rows)
	}
}

func TestHashEqualsNestedLoopProperty(t *testing.T) {
	// Property: for random data, hash join ≡ nested-loop join for inner,
	// left and right joins with an extra residual predicate.
	cat, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE l (k INT, v INT); CREATE TABLE r (k INT, w INT)`)
	lt, _ := cat.Get("l")
	rt, _ := cat.Get("r")

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lt.Rows, rt.Rows = nil, nil
		for i := 0; i < 20; i++ {
			k := types.NewInt(int64(rng.Intn(5)))
			if rng.Intn(8) == 0 {
				k = types.Null
			}
			lt.Rows = append(lt.Rows, types.Row{k, types.NewInt(int64(rng.Intn(10)))})
		}
		for i := 0; i < 15; i++ {
			k := types.NewInt(int64(rng.Intn(5)))
			if rng.Intn(8) == 0 {
				k = types.Null
			}
			rt.Rows = append(rt.Rows, types.Row{k, types.NewInt(int64(rng.Intn(10)))})
		}
		for _, jt := range []string{"JOIN", "LEFT JOIN", "RIGHT JOIN"} {
			q := fmt.Sprintf(`SELECT l.k, l.v, r.k, r.w FROM l %s r ON l.k = r.k AND l.v < 8`, jt)
			h, err1 := run(q, &plan.Options{ForceJoin: plan.JoinHash})
			n, err2 := run(q, &plan.Options{ForceJoin: plan.JoinNestedLoop})
			if err1 != nil || err2 != nil {
				t.Logf("errs: %v %v", err1, err2)
				return false
			}
			if !sameRowMultiset(h.Rows, n.Rows) {
				t.Logf("%s differs: hash=%d nl=%d", jt, len(h.Rows), len(n.Rows))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sameRowMultiset(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r types.Row) string { return types.Key(r...) }
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = key(a[i])
		bs[i] = key(b[i])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestUnionAllVsUnion(t *testing.T) {
	_, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (1), (2)`)
	res := mustRun(t, run, `SELECT a FROM t UNION ALL SELECT a FROM t`)
	if len(res.Rows) != 6 {
		t.Errorf("union all = %d rows", len(res.Rows))
	}
	res = mustRun(t, run, `SELECT a FROM t UNION SELECT a FROM t`)
	if len(res.Rows) != 2 {
		t.Errorf("union = %d rows", len(res.Rows))
	}
}

func TestLimitAndDistinct(t *testing.T) {
	_, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE t (a INT); INSERT INTO t VALUES (3), (1), (2), (1)`)
	res := mustRun(t, run, `SELECT DISTINCT a FROM t ORDER BY a LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
		t.Errorf("distinct+limit = %v", res.Rows)
	}
}

func TestSubqueryResultCaching(t *testing.T) {
	// Uncorrelated subqueries must execute once per statement; correlated
	// ones per outer row. Observe via a counting side effect: a growing
	// table would change results if re-executed (it can't), so instead
	// verify the correlation classification through behaviour.
	cat, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3)`)
	// Correlated: per-row max comparison.
	res := mustRun(t, run, `SELECT a FROM t x WHERE a = (SELECT MAX(a) FROM t y WHERE y.a <= x.a) ORDER BY a`)
	if len(res.Rows) != 3 {
		t.Errorf("correlated scalar = %v", res.Rows)
	}
	_ = cat
}

func TestFormatTable(t *testing.T) {
	_, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE t (a INT, name TEXT)`)
	mustRun(t, run, `INSERT INTO t VALUES (1, 'long-value-here'), (NULL, 'x')`)
	out := mustRun(t, run, `SELECT a, name FROM t`).FormatTable()
	if !strings.Contains(out, "long-value-here") || !strings.Contains(out, "NULL") {
		t.Errorf("format:\n%s", out)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Errorf("row count missing:\n%s", out)
	}
}

func TestInSubqueryStrategiesAgree(t *testing.T) {
	_, run := newEnv(t)
	mustRun(t, run, `CREATE TABLE t (a INT); CREATE TABLE s (b INT)`)
	mustRun(t, run, `INSERT INTO t VALUES (1),(2),(3),(4),(NULL)`)
	mustRun(t, run, `INSERT INTO s VALUES (2),(4),(NULL)`)
	for _, q := range []string{
		`SELECT a FROM t WHERE a IN (SELECT b FROM s) ORDER BY a`,
		`SELECT a FROM t WHERE a NOT IN (SELECT b FROM s WHERE b IS NOT NULL) ORDER BY a`,
	} {
		h, err := run(q, &plan.Options{ForceJoin: plan.JoinHash})
		if err != nil {
			t.Fatal(err)
		}
		n, err := run(q, &plan.Options{ForceJoin: plan.JoinNestedLoop})
		if err != nil {
			t.Fatal(err)
		}
		if !sameRowMultiset(h.Rows, n.Rows) {
			t.Errorf("%s: hash=%v nl=%v", q, h.Rows, n.Rows)
		}
	}
	// NOT IN against a set containing NULL filters everything (3VL).
	res := mustRun(t, run, `SELECT a FROM t WHERE a NOT IN (SELECT b FROM s)`)
	if len(res.Rows) != 0 {
		t.Errorf("NOT IN with NULL member = %v", res.Rows)
	}
}
