package exec

import (
	"sqlsheet/internal/aggs"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// execWindow computes window functions: rows are hash-partitioned on the
// PARTITION BY keys, ordered within each partition, and each spec's values
// are appended as a new column. Sliding aggregate frames reuse the
// aggregates' algebraic inverses where they exist.
func (ex *Executor) execWindow(n *plan.Window, outer *eval.Binding) (*Result, error) {
	in, err := ex.Execute(n.Input, outer)
	if err != nil {
		return nil, err
	}
	width := len(in.Schema.Cols)
	out := make([]types.Row, len(in.Rows))
	for i, r := range in.Rows {
		row := make(types.Row, width, width+len(n.Specs))
		copy(row, r)
		out[i] = row
	}
	for _, spec := range n.Specs {
		vals, err := ex.windowColumn(spec, n.Compiled, in, outer)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = append(out[i], vals[i])
		}
	}
	return &Result{Schema: n.Schema(), Rows: out}, nil
}

// windowColumn computes one spec's value for every input row, in input
// order.
func (ex *Executor) windowColumn(spec plan.WindowSpec, compiled map[sqlast.Expr]eval.CompiledExpr, in *Result, outer *eval.Binding) ([]types.Value, error) {
	ctx := ex.ctx(in.Schema, nil, outer)
	evalAt := func(e sqlast.Expr, row types.Row) (types.Value, error) {
		ctx.Binding.Row = row
		if c, ok := compiled[e]; ok && c.Valid() {
			return c.Eval(ctx)
		}
		return eval.Eval(ctx, e) // interp-ok: fallback when compilation is off
	}

	// Partition.
	type part struct{ idx []int }
	parts := map[string]*part{}
	var order []string
	var buf []byte
	for i, row := range in.Rows {
		buf = buf[:0]
		for _, pe := range spec.Fn.PartitionBy {
			v, err := evalAt(pe, row)
			if err != nil {
				return nil, err
			}
			buf = types.AppendKey(buf, v)
		}
		p := parts[string(buf)]
		if p == nil {
			p = &part{}
			parts[string(buf)] = p
			order = append(order, string(buf))
		}
		p.idx = append(p.idx, i)
	}

	result := make([]types.Value, len(in.Rows))
	for _, k := range order {
		p := parts[k]
		// Order within the partition (stable: input order breaks ties).
		keys := make([][]types.Value, len(p.idx))
		for j, ri := range p.idx {
			ks := make([]types.Value, len(spec.Fn.OrderBy))
			for oi, o := range spec.Fn.OrderBy {
				v, err := evalAt(o.Expr, in.Rows[ri])
				if err != nil {
					return nil, err
				}
				ks[oi] = v
			}
			keys[j] = ks
		}
		// Chunked parallel sort; stability keeps input order on ties, same
		// as the former explicit a-b tie break.
		pos := ex.sortedPerm("window-sort", len(p.idx), func(a, b int) int {
			for oi := range spec.Fn.OrderBy {
				c := types.Compare(keys[a][oi], keys[b][oi])
				if spec.Fn.OrderBy[oi].Desc {
					c = -c
				}
				if c != 0 {
					return c
				}
			}
			return 0
		})
		ordered := make([]int, len(pos)) // ordered[k] = row index of k-th row
		okeys := make([][]types.Value, len(pos))
		for k2, j := range pos {
			ordered[k2] = p.idx[j]
			okeys[k2] = keys[j]
		}
		if err := ex.fillWindowValues(spec, in, ordered, okeys, evalAt, result); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// sameKeys reports whether two ordering keys tie.
func sameKeys(a, b []types.Value) bool {
	for i := range a {
		if types.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// fillWindowValues computes the function over one ordered partition.
func (ex *Executor) fillWindowValues(spec plan.WindowSpec, in *Result, ordered []int,
	okeys [][]types.Value, evalAt func(sqlast.Expr, types.Row) (types.Value, error),
	result []types.Value) error {

	fn := spec.Fn.Func
	n := len(ordered)
	switch fn.Name {
	case "row_number":
		for k, ri := range ordered {
			result[ri] = types.NewInt(int64(k + 1))
		}
		return nil
	case "rank", "dense_rank":
		rank, dense := 1, 1
		for k, ri := range ordered {
			if k > 0 && !sameKeys(okeys[k], okeys[k-1]) {
				rank = k + 1
				dense++
			}
			if fn.Name == "rank" {
				result[ri] = types.NewInt(int64(rank))
			} else {
				result[ri] = types.NewInt(int64(dense))
			}
		}
		return nil
	case "lag", "lead":
		offset := 1
		if len(fn.Args) >= 2 {
			v, err := evalAt(fn.Args[1], in.Rows[ordered[0]])
			if err != nil {
				return err
			}
			offset = int(v.Int())
		}
		for k, ri := range ordered {
			src := k - offset
			if fn.Name == "lead" {
				src = k + offset
			}
			if src < 0 || src >= n {
				if len(fn.Args) >= 3 {
					v, err := evalAt(fn.Args[2], in.Rows[ri])
					if err != nil {
						return err
					}
					result[ri] = v
				} else {
					result[ri] = types.Null
				}
				continue
			}
			v, err := evalAt(fn.Args[0], in.Rows[ordered[src]])
			if err != nil {
				return err
			}
			result[ri] = v
		}
		return nil
	case "first_value", "last_value":
		for k, ri := range ordered {
			lo, hi := frameBounds(spec.Fn, k, n)
			if lo > hi {
				result[ri] = types.Null
				continue
			}
			src := lo
			if fn.Name == "last_value" {
				src = hi
			}
			v, err := evalAt(fn.Args[0], in.Rows[ordered[src]])
			if err != nil {
				return err
			}
			result[ri] = v
		}
		return nil
	}

	// Aggregates over frames.
	argVals := func(k int) ([]types.Value, error) {
		if fn.Star {
			return nil, nil
		}
		vals := make([]types.Value, len(fn.Args))
		for i, a := range fn.Args {
			v, err := evalAt(a, in.Rows[ordered[k]])
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}
	acc, err := aggs.New(fn.Name, fn.Star)
	if err != nil {
		return err
	}
	// Sliding evaluation with Add/Remove when the accumulator is
	// invertible; recompute per row otherwise (min/max).
	prevLo, prevHi := 0, -1
	for k, ri := range ordered {
		lo, hi := frameBounds(spec.Fn, k, n)
		if !acc.Invertible() || lo < prevLo {
			acc.Reset()
			prevLo, prevHi = lo, lo-1
		}
		for ; prevLo < lo; prevLo++ {
			vals, err := argVals(prevLo)
			if err != nil {
				return err
			}
			acc.Remove(vals...)
		}
		for prevHi < hi {
			prevHi++
			vals, err := argVals(prevHi)
			if err != nil {
				return err
			}
			acc.Add(vals...)
		}
		for ; prevHi > hi; prevHi-- {
			vals, err := argVals(prevHi)
			if err != nil {
				return err
			}
			acc.Remove(vals...)
		}
		result[ri] = acc.Result()
	}
	return nil
}

// frameBounds returns the [lo, hi] ordered-position range of the frame for
// the row at position k of an n-row partition. The default frame is the
// whole partition without ORDER BY and the cumulative prefix with it.
func frameBounds(w *sqlast.WindowFunc, k, n int) (int, int) {
	if w.Frame == nil {
		if len(w.OrderBy) == 0 {
			return 0, n - 1
		}
		return 0, k
	}
	bound := func(fb sqlast.FrameBound) int {
		switch fb.Kind {
		case sqlast.FrameUnboundedPreceding:
			return 0
		case sqlast.FramePreceding:
			return k - fb.N
		case sqlast.FrameCurrentRow:
			return k
		case sqlast.FrameFollowing:
			return k + fb.N
		case sqlast.FrameUnboundedFollowing:
			return n - 1
		}
		return k
	}
	lo, hi := bound(w.Frame.Start), bound(w.Frame.End)
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}
