package exec

import (
	"errors"
	"fmt"

	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// runner implements eval.SubqueryRunner and plan.RefExecutor over the
// owning executor. Uncorrelated subqueries are detected dynamically: the
// first execution runs without the outer binding; if it succeeds the result
// is cached for the rest of the statement, otherwise (unknown column) the
// subquery is marked correlated and re-run per row.
type runner struct {
	ex *Executor
}

func (r *runner) result(sub *sqlast.SelectStmt, outer *eval.Binding) (*Result, error) {
	ex := r.ex
	ex.mu.Lock()
	p := ex.subPlans[sub]
	correl, known := ex.subCorrel[sub]
	cached := ex.subCache[sub]
	ex.mu.Unlock()

	if p == nil {
		var err error
		p, err = plan.Build(ex.Cat, sub, ex.planOpts())
		if err != nil {
			return nil, err
		}
		ex.mu.Lock()
		ex.subPlans[sub] = p
		ex.mu.Unlock()
	}
	if known && !correl && cached != nil {
		return cached, nil
	}
	if !known {
		res, err := ex.Execute(p, nil)
		if err == nil {
			ex.mu.Lock()
			ex.subCorrel[sub] = false
			ex.subCache[sub] = res
			ex.mu.Unlock()
			return res, nil
		}
		if !errors.Is(err, eval.ErrUnknownColumn) {
			return nil, err
		}
		ex.mu.Lock()
		ex.subCorrel[sub] = true
		ex.mu.Unlock()
	}
	return ex.Execute(p, outer)
}

// Scalar implements eval.SubqueryRunner.
func (r *runner) Scalar(sub *sqlast.SelectStmt, outer *eval.Binding) (types.Value, error) {
	res, err := r.result(sub, outer)
	if err != nil {
		return types.Null, err
	}
	if len(res.Rows) == 0 {
		return types.Null, nil
	}
	if len(res.Rows) > 1 {
		return types.Null, fmt.Errorf("scalar subquery returned %d rows", len(res.Rows))
	}
	if len(res.Rows[0]) != 1 {
		return types.Null, fmt.Errorf("scalar subquery returned %d columns", len(res.Rows[0]))
	}
	return res.Rows[0][0], nil
}

// Column implements eval.SubqueryRunner.
func (r *runner) Column(sub *sqlast.SelectStmt, outer *eval.Binding) ([]types.Value, error) {
	res, err := r.result(sub, outer)
	if err != nil {
		return nil, err
	}
	if len(res.Schema.Cols) < 1 {
		return nil, fmt.Errorf("subquery returns no columns")
	}
	out := make([]types.Value, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = row[0]
	}
	return out, nil
}

// Exists implements eval.SubqueryRunner.
func (r *runner) Exists(sub *sqlast.SelectStmt, outer *eval.Binding) (bool, error) {
	res, err := r.result(sub, outer)
	if err != nil {
		return false, err
	}
	return len(res.Rows) > 0, nil
}

// valSet is a hashed membership index over a subquery's first column.
type valSet struct {
	set     map[string]bool
	sawNull bool
}

func newValSet(rows []types.Row) *valSet {
	vs := &valSet{set: make(map[string]bool, len(rows))}
	for _, row := range rows {
		if row[0].IsNull() {
			vs.sawNull = true
			continue
		}
		vs.set[types.Key(row[0])] = true
	}
	return vs
}

func (vs *valSet) contains(v types.Value) types.Value {
	if v.IsNull() {
		return types.Null
	}
	if vs.set[types.Key(v)] {
		return types.NewBool(true)
	}
	if vs.sawNull {
		return types.Null
	}
	return types.NewBool(false)
}

// In implements eval.SubqueryRunner. The access path models the join-method
// choice of the paper's Fig. 2: with ForceJoin == nested-loop the
// materialized list is rescanned per probe (the optimizer's bad plan for
// low selectivities); otherwise a hash set is built once per statement.
func (r *runner) In(sub *sqlast.SelectStmt, outer *eval.Binding, v types.Value) (types.Value, error) {
	ex := r.ex
	nestedLoop := ex.planOpts().ForceJoin == plan.JoinNestedLoop
	if nestedLoop {
		vals, err := r.Column(sub, outer)
		if err != nil {
			return types.Null, err
		}
		return eval.InMembership(v, vals), nil
	}
	ex.mu.Lock()
	vs, cached := ex.subSets[sub]
	correl := ex.subCorrel[sub]
	ex.mu.Unlock()
	if cached && !correl {
		return vs.contains(v), nil
	}
	res, err := r.result(sub, outer)
	if err != nil {
		return types.Null, err
	}
	vs = newValSet(res.Rows)
	ex.mu.Lock()
	if !ex.subCorrel[sub] {
		ex.subSets[sub] = vs
	}
	ex.mu.Unlock()
	return vs.contains(v), nil
}

// Rows implements plan.RefExecutor (plan-time execution of reference
// queries for extended pushing and formula unfolding).
func (ex *Executor) Rows(stmt *sqlast.SelectStmt) (*eval.BoundSchema, []types.Row, error) {
	r := &runner{ex: ex}
	res, err := r.result(stmt, nil)
	if err != nil {
		return nil, nil, err
	}
	return res.Schema, res.Rows, nil
}

// planOpts returns the plan options used for nested statements.
func (ex *Executor) planOpts() *plan.Options {
	if ex.Opts.PlanOpts != nil {
		return ex.Opts.PlanOpts
	}
	return &plan.Options{Exec: ex}
}
