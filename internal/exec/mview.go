package exec

import (
	"fmt"

	"sqlsheet/internal/catalog"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// This file implements the paper's §7 "Materialized Views" direction: a
// spreadsheet query stored in a materialized view, with incremental refresh
// propagating detail-data changes through the formulas. Incremental refresh
// exploits the clause's own structure: partitions are independent, so when
// the (append-only) fact table grows, only the PBY partitions containing new
// rows are recomputed — the engine's predicate pushing then prunes
// everything else.

func (ex *Executor) execCreateView(cv *sqlast.CreateView) (*Result, error) {
	if !cv.Materialized {
		// Validate the definition by planning it once.
		if _, err := plan.Build(ex.Cat, cv.Query, ex.planOpts()); err != nil {
			return nil, fmt.Errorf("view %s: %v", cv.Name, err)
		}
		if _, err := ex.Cat.CreateView(cv.Name, cv.Query); err != nil {
			return nil, err
		}
		return &Result{Schema: eval.NewBoundSchema(nil)}, nil
	}
	res, err := ex.runStmt(cv.Query)
	if err != nil {
		return nil, fmt.Errorf("materialized view %s: %v", cv.Name, err)
	}
	cols := make([]types.Column, len(res.Schema.Cols))
	for i, c := range res.Schema.Cols {
		cols[i] = types.Column{Name: c.Name}
	}
	mv := &catalog.MatView{
		Name:   cv.Name,
		Query:  cv.Query,
		DefSQL: sqlast.FormatStatement(cv.Query),
		Table:  &catalog.Table{Schema: types.NewSchema(cols...), Rows: res.Rows},
	}
	mv.MainSource, mv.PbyCols = ex.analyzeIncremental(cv.Query)
	mv.Watermarks, mv.Versions = ex.snapshotWatermarks(cv.Query)
	if err := ex.Cat.CreateMatView(mv); err != nil {
		return nil, err
	}
	return &Result{Schema: eval.NewBoundSchema([]eval.BoundCol{{Name: "rows"}}),
		Rows: []types.Row{{types.NewInt(int64(len(res.Rows)))}}}, nil
}

func (ex *Executor) runStmt(stmt *sqlast.SelectStmt) (*Result, error) {
	p, err := plan.Build(ex.Cat, stmt, ex.planOpts())
	if err != nil {
		return nil, err
	}
	return ex.Execute(p, nil)
}

func (ex *Executor) execDrop(st *sqlast.DropStmt) (*Result, error) {
	if !ex.Cat.DropObject(st.Name) {
		return nil, fmt.Errorf("unknown table or view %q", st.Name)
	}
	return &Result{Schema: eval.NewBoundSchema(nil)}, nil
}

// execRefresh recomputes a materialized view: incrementally when only the
// main fact table grew, fully otherwise.
func (ex *Executor) execRefresh(st *sqlast.RefreshStmt) (*Result, error) {
	mv, ok := ex.Cat.MatViewDef(st.Name)
	if !ok {
		return nil, fmt.Errorf("unknown materialized view %q", st.Name)
	}
	mode, n, err := ex.refreshMatView(mv, st.Full)
	if err != nil {
		return nil, err
	}
	return &Result{
		Schema: eval.NewBoundSchema([]eval.BoundCol{{Name: "mode"}, {Name: "rows"}}),
		Rows:   []types.Row{{types.NewString(mode), types.NewInt(int64(n))}},
	}, nil
}

// refreshMatView returns the refresh mode used ("noop", "incremental",
// "full") and the number of rows (re)computed.
func (ex *Executor) refreshMatView(mv *catalog.MatView, forceFull bool) (string, int, error) {
	full := forceFull || mv.MainSource == "" || len(mv.PbyCols) == 0
	if !full {
		// Any change to a secondary source (dimension tables, reference
		// sheets) invalidates partition-level reasoning.
		for name, ver := range mv.Versions {
			if name == mv.MainSource {
				continue
			}
			if t, ok := ex.Cat.Get(name); !ok || t.Version.Load() != ver {
				full = true
				break
			}
		}
	}
	main, ok := ex.Cat.Get(mv.MainSource)
	if !full && !ok {
		full = true
	}
	if !full {
		wm := mv.Watermarks[mv.MainSource]
		appended := len(main.Rows) - wm
		switch {
		case appended < 0,
			// Version must have advanced exactly once per appended row;
			// anything else means updates or deletes happened in between.
			main.Version.Load()-mv.Versions[mv.MainSource] != int64(appended):
			full = true
		case appended == 0:
			return "noop", 0, nil
		}
		if !full {
			n, err := ex.refreshIncremental(mv, main, wm)
			if err != nil {
				return "", 0, err
			}
			mv.Watermarks, mv.Versions = ex.snapshotWatermarks(mv.Query)
			return "incremental", n, nil
		}
	}
	res, err := ex.runStmt(mv.Query)
	if err != nil {
		return "", 0, err
	}
	mv.Table.Rows = res.Rows
	// The backing table's contents changed without going through Insert;
	// bump its version so dependent caches invalidate.
	mv.Table.Version.Add(1)
	mv.Watermarks, mv.Versions = ex.snapshotWatermarks(mv.Query)
	return "full", len(res.Rows), nil
}

// refreshIncremental recomputes only the PBY partitions that received new
// fact rows since the watermark.
func (ex *Executor) refreshIncremental(mv *catalog.MatView, main *catalog.Table, wm int) (int, error) {
	// Distinct new values per PBY column.
	sets := make([]map[string]types.Value, len(mv.PbyCols))
	for i := range sets {
		sets[i] = map[string]types.Value{}
	}
	for _, row := range main.Rows[wm:] {
		for i, pb := range mv.PbyCols {
			v := row[pb.SourceCol]
			sets[i][types.Key(v)] = v
		}
	}
	// Membership predicate per PBY column (conjunction over-approximates
	// the changed partition set, which is sound: recomputation is
	// idempotent).
	var pred sqlast.Expr
	for i, pb := range mv.PbyCols {
		var list []sqlast.Expr
		for _, v := range sets[i] {
			list = append(list, &sqlast.Literal{Val: v})
		}
		var p sqlast.Expr
		if len(list) == 1 {
			p = &sqlast.Binary{Op: "=", L: &sqlast.ColumnRef{Name: pb.Name}, R: list[0]}
		} else {
			p = &sqlast.InList{X: &sqlast.ColumnRef{Name: pb.Name}, List: list}
		}
		pred = andAll(pred, p)
	}

	// Re-run the view's query restricted to the affected partitions. The
	// clone keeps the stored AST pristine.
	body := mv.Query.Query.(*sqlast.SelectBody)
	cl := *body
	cl.Where = andAll(body.Where, pred)
	stmt := &sqlast.SelectStmt{Query: &cl, OrderBy: mv.Query.OrderBy, Limit: mv.Query.Limit}
	res, err := ex.runStmt(stmt)
	if err != nil {
		return 0, err
	}

	// Replace the affected partitions' rows in the materialized table.
	affected := func(row types.Row) bool {
		for i, pb := range mv.PbyCols {
			if _, ok := sets[i][types.Key(row[pb.OutputCol])]; !ok {
				return false
			}
		}
		return true
	}
	keep := mv.Table.Rows[:0:0]
	for _, row := range mv.Table.Rows {
		if !affected(row) {
			keep = append(keep, row)
		}
	}
	mv.Table.Rows = append(keep, res.Rows...)
	// Not an append-only change (affected partitions were replaced): bump
	// the version so dependent caches invalidate.
	mv.Table.Version.Add(1)
	return len(res.Rows), nil
}

// analyzeIncremental decides whether a view definition supports
// partition-level incremental refresh: a single-table FROM under a
// spreadsheet whose PBY columns come straight from that table and appear in
// the output.
func (ex *Executor) analyzeIncremental(stmt *sqlast.SelectStmt) (string, []catalog.PbyBinding) {
	if len(stmt.With) > 0 {
		return "", nil
	}
	body, ok := stmt.Query.(*sqlast.SelectBody)
	if !ok || body.Spreadsheet == nil || len(body.Spreadsheet.PBY) == 0 {
		return "", nil
	}
	if len(body.From) != 1 {
		return "", nil
	}
	tn, ok := body.From[0].(*sqlast.TableName)
	if !ok {
		return "", nil
	}
	src, ok := ex.Cat.Get(tn.Name)
	if !ok {
		return "", nil
	}
	if _, isMV := ex.Cat.MatViewDef(tn.Name); isMV {
		return "", nil // layered MVs refresh fully
	}
	alias := tn.Alias
	if alias == "" {
		alias = tn.Name
	}
	// Output positions: explicit select items or a lone star.
	outOrdinal := func(name string) int {
		if len(body.Items) == 1 {
			if _, star := body.Items[0].Expr.(*sqlast.Star); star {
				// Star over a spreadsheet expands PBY ++ DBY ++ MEA.
				for i, e := range body.Spreadsheet.PBY {
					if c, ok := e.(*sqlast.ColumnRef); ok && c.Name == name {
						return i
					}
				}
				return -1
			}
		}
		for i, item := range body.Items {
			c, ok := item.Expr.(*sqlast.ColumnRef)
			if !ok || c.Name != name {
				continue
			}
			if item.Alias != "" && item.Alias != name {
				continue
			}
			return i
		}
		return -1
	}
	var binds []catalog.PbyBinding
	for _, e := range body.Spreadsheet.PBY {
		c, ok := e.(*sqlast.ColumnRef)
		if !ok || (c.Table != "" && c.Table != alias) {
			return "", nil
		}
		srcCol := src.Schema.Lookup(c.Name)
		out := outOrdinal(c.Name)
		if srcCol < 0 || out < 0 {
			return "", nil
		}
		binds = append(binds, catalog.PbyBinding{Name: c.Name, SourceCol: srcCol, OutputCol: out})
	}
	return src.Name, binds
}

// snapshotWatermarks records the current row count and mutation version of
// every base table the statement reads (views expand; unknown names are
// skipped — they will force a full refresh when they appear later).
func (ex *Executor) snapshotWatermarks(stmt *sqlast.SelectStmt) (map[string]int, map[string]int64) {
	out := map[string]int{}
	vers := map[string]int64{}
	seenViews := map[string]bool{}
	var walkStmt func(s *sqlast.SelectStmt)
	var walkQuery func(q sqlast.QueryExpr)
	var walkRef func(tr sqlast.TableRef)
	var walkExprSubs func(e sqlast.Expr)

	note := func(name string) {
		if v, ok := ex.Cat.ViewDef(name); ok {
			if !seenViews[name] {
				seenViews[name] = true
				walkStmt(v.Query)
			}
			return
		}
		if t, ok := ex.Cat.Get(name); ok {
			out[t.Name] = len(t.Rows)
			vers[t.Name] = t.Version.Load()
		}
	}
	walkExprSubs = func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			switch x := n.(type) {
			case *sqlast.InSubquery:
				walkStmt(x.Sub)
			case *sqlast.Exists:
				walkStmt(x.Sub)
			case *sqlast.ScalarSubquery:
				walkStmt(x.Sub)
			case *sqlast.CellRef:
				for _, q := range x.Quals {
					if q.ForSub != nil {
						walkStmt(q.ForSub)
					}
				}
			}
			return true
		})
	}
	walkRef = func(tr sqlast.TableRef) {
		switch x := tr.(type) {
		case *sqlast.TableName:
			note(x.Name)
		case *sqlast.SubqueryRef:
			walkStmt(x.Sub)
		case *sqlast.JoinRef:
			walkRef(x.L)
			walkRef(x.R)
			walkExprSubs(x.On)
		}
	}
	walkQuery = func(q sqlast.QueryExpr) {
		switch x := q.(type) {
		case *sqlast.Union:
			walkQuery(x.L)
			walkQuery(x.R)
		case *sqlast.SelectBody:
			for _, tr := range x.From {
				walkRef(tr)
			}
			walkExprSubs(x.Where)
			walkExprSubs(x.Having)
			for _, it := range x.Items {
				walkExprSubs(it.Expr)
			}
			if sc := x.Spreadsheet; sc != nil {
				for _, ref := range sc.Refs {
					walkStmt(ref.Query)
				}
				for _, f := range sc.Rules {
					walkExprSubs(f.RHS)
					walkExprSubs(f.LHS)
				}
			}
		}
	}
	walkStmt = func(s *sqlast.SelectStmt) {
		for _, cte := range s.With {
			walkStmt(cte.Query)
		}
		walkQuery(s.Query)
	}
	walkStmt(stmt)
	return out, vers
}
