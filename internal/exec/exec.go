// Package exec is the physical executor: it runs logical plans from
// internal/plan over catalog tables, provides the subquery runner the
// evaluator and spreadsheet engine use, and drives spreadsheet execution
// (reference-sheet materialization, store selection, parallelism).
package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/catalog"
	"sqlsheet/internal/colstore"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
)

// Options configures execution.
type Options struct {
	// Ctx, when non-nil, makes execution cancellable: the executor polls it
	// at every plan-node boundary and every operator morsel, and the
	// spreadsheet engine polls it per partition, per cyclic/ITERATE
	// iteration and every few thousand scanned rows. On cancellation the
	// statement unwinds with the context's error. A nil Ctx costs nothing.
	Ctx context.Context
	// Parallel is the spreadsheet degree of parallelism (PE count).
	Parallel int
	// Workers is the operator worker-pool size for morsel-driven parallel
	// relational operators (filter, project, hash join, group-by).
	// 0 = runtime.NumCPU(); 1 = serial operators. The pool and the
	// spreadsheet PEs share one core budget of max(Workers, Parallel).
	Workers int
	// MorselSize overrides the operator morsel size in rows (0 = 1024).
	// Morsel boundaries — and therefore result bytes, floating-point
	// accumulation included — depend only on this and the input size,
	// never on Workers.
	MorselSize int
	// Buckets overrides the number of first-level hash partitions.
	Buckets int
	// MemoryBudget bounds each first-level partition's resident bytes;
	// 0 = unbounded (in-memory stores, no spilling).
	MemoryBudget int64
	// SpillDir is where budgeted stores spill (default: os.TempDir()).
	SpillDir string
	// DisableSingleScan / DisableRangeProbe toggle spreadsheet execution
	// optimizations (ablation knobs).
	DisableSingleScan bool
	DisableRangeProbe bool
	// UseBTreeIndex swaps the cell hash tables for B-trees (access-path
	// ablation, paper §7).
	UseBTreeIndex bool
	// DisableCompiledEval keeps per-row expressions on the tree-walking
	// interpreter (ablation knob; results are byte-identical either way).
	// The plan side carries the same flag in plan.Options.
	DisableCompiledEval bool
	// DisableParallelBuild forces the serial partition build (ablation;
	// the structure built is byte-identical either way).
	DisableParallelBuild bool
	// DisableParallelSort forces serial run sorting for ORDER BY and window
	// partition ordering (ablation; identical bytes either way).
	DisableParallelSort bool
	// DisableAsyncSpill keeps spill stores on synchronous eviction I/O and
	// disables read-ahead (ablation; identical bytes either way).
	DisableAsyncSpill bool
	// DisableVectorizedExec keeps scans, filters and key encoding on the
	// row-at-a-time paths instead of columnar batch kernels (ablation knob;
	// identical bytes either way). The plan side carries the same flag in
	// plan.Options so kernels are not even compiled when it is set.
	DisableVectorizedExec bool
	// DisableVectorizedRules keeps spreadsheet formula application on the
	// per-cell path instead of batch rule kernels (ablation knob; identical
	// bytes either way). DisableVectorizedExec implies it.
	DisableVectorizedRules bool
	// VecMinRows overrides the spreadsheet engine's minimum batch size;
	// <=0 uses the engine default.
	VecMinRows int
	// PlanOpts is used when the executor plans subqueries itself.
	PlanOpts *plan.Options
	// Structs, when non-nil, lets execSpreadsheet reuse cached access
	// structures for the plan's spreadsheet nodes and publish freshly
	// built ones. Set by the DB layer when executing a cached plan.
	Structs StructureCache
	// Dist, when non-nil, is the scatter-gather coordinator consulted for
	// plan nodes the distribution pass marked distributable. Results are
	// byte-identical to local execution (see Distributor); a nil or
	// declining distributor means everything runs in this process.
	Dist Distributor
	// Snap, when non-nil, runs the statement under snapshot isolation:
	// every table scan reads the MVCC image pinned at the statement's first
	// access instead of the live rows, so SELECTs need no statement lock.
	// Nil reads the live rows directly — the caller must then hold whatever
	// lock makes them safe (the exclusive statement lock for DML, or sole
	// ownership for tests and the shard workers' ephemeral catalogs).
	Snap *catalog.Snapshot
	// FastLocalPath lets unbudgeted in-memory spreadsheet runs skip the
	// defensive row clones at the chunk-store boundary (input rows into the
	// access structure, result rows out of it). Safe because the engine
	// never mutates a stored row in place — every write clones and replaces
	// — and results are byte-identical either way. The DB layer sets it
	// when MemoryBudget is 0 and the DisableFastLocalPath ablation knob is
	// off.
	FastLocalPath bool
}

// Result is a materialized relation. Img/RowIdx/ColMap, when set, record
// columnar provenance: the rows are a selection over the columnar image Img
// — Rows[i] is image row RowIdx[i] (identity when RowIdx is nil) and output
// column j is image column ColMap[j] (identity when ColMap is nil).
// Downstream operators use the provenance for batch kernels and columnar
// key encoding; operators that cannot maintain it drop it, which is always
// correct (the row path is the source of truth).
type Result struct {
	Schema *eval.BoundSchema
	Rows   []types.Row
	Img    *colstore.Table
	RowIdx []int32
	ColMap []int
}

// Executor runs plans. Create one per top-level statement: subquery and CTE
// caches live for the executor's lifetime.
type Executor struct {
	Cat  *catalog.Catalog
	Opts Options

	mu        sync.Mutex
	cteCache  map[*plan.CTEDef]*Result
	subPlans  map[*sqlast.SelectStmt]plan.Node
	subCache  map[*sqlast.SelectStmt]*Result
	subCorrel map[*sqlast.SelectStmt]bool
	subSets   map[*sqlast.SelectStmt]*valSet

	// bud is the shared core budget drawn on by operator worker pools and
	// spreadsheet PEs alike (see parallel.go).
	bud *budget

	// SheetStats accumulates access-structure I/O from spreadsheet nodes.
	SheetStats blockstore.Stats
	// ExecStats accumulates per-operator parallel execution measurements.
	ExecStats Stats
}

// New creates an executor over a catalog.
func New(cat *catalog.Catalog, opts Options) *Executor {
	ex := &Executor{
		Cat:       cat,
		Opts:      opts,
		cteCache:  map[*plan.CTEDef]*Result{},
		subPlans:  map[*sqlast.SelectStmt]plan.Node{},
		subCache:  map[*sqlast.SelectStmt]*Result{},
		subCorrel: map[*sqlast.SelectStmt]bool{},
		subSets:   map[*sqlast.SelectStmt]*valSet{},
	}
	// One budget for the whole statement: the larger of the two requested
	// degrees, minus the coordinating goroutine itself.
	total := ex.workers()
	if opts.Parallel > total {
		total = opts.Parallel
	}
	ex.bud = newBudget(total - 1)
	return ex
}

// checkCtx polls the execution context; it returns the cancellation error
// once the context is done and nil for a nil context (the embedded default).
func (ex *Executor) checkCtx() error {
	ctx := ex.Opts.Ctx
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Execute runs a plan node. outer supplies correlation bindings for
// subquery plans; nil at the top level.
func (ex *Executor) Execute(n plan.Node, outer *eval.Binding) (*Result, error) {
	if err := ex.checkCtx(); err != nil {
		return nil, err
	}
	switch x := n.(type) {
	case *plan.Scan:
		return ex.execScan(x, outer)
	case *plan.CTERef:
		return ex.execCTERef(x, outer)
	case *plan.Filter:
		return ex.execFilter(x, outer)
	case *plan.Project:
		return ex.execProject(x, outer)
	case *plan.Join:
		return ex.execJoin(x, outer)
	case *plan.GroupBy:
		return ex.execGroupBy(x, outer)
	case *plan.Union:
		l, err := ex.Execute(x.L, outer)
		if err != nil {
			return nil, err
		}
		r, err := ex.Execute(x.R, outer)
		if err != nil {
			return nil, err
		}
		rows := make([]types.Row, 0, len(l.Rows)+len(r.Rows))
		rows = append(rows, l.Rows...)
		rows = append(rows, r.Rows...)
		return &Result{Schema: n.Schema(), Rows: rows}, nil
	case *plan.Distinct:
		in, err := ex.Execute(x.Input, outer)
		if err != nil {
			return nil, err
		}
		seen := make(map[string]bool, len(in.Rows))
		var rows []types.Row
		var buf []byte
		for _, r := range in.Rows {
			buf = buf[:0]
			for _, v := range r {
				buf = types.AppendKey(buf, v)
			}
			// string(buf) in the map index does not allocate; the key
			// string is materialized only for first-seen rows.
			if !seen[string(buf)] {
				seen[string(buf)] = true
				rows = append(rows, r)
			}
		}
		return &Result{Schema: n.Schema(), Rows: rows}, nil
	case *plan.Sort:
		return ex.execSort(x, outer)
	case *plan.Limit:
		in, err := ex.Execute(x.Input, outer)
		if err != nil {
			return nil, err
		}
		if len(in.Rows) > x.N {
			in = &Result{Schema: in.Schema, Rows: in.Rows[:x.N]}
		}
		return in, nil
	case *plan.Alias:
		in, err := ex.Execute(x.Input, outer)
		if err != nil {
			return nil, err
		}
		// Aliasing renames columns without reordering rows or columns, so
		// columnar provenance carries through unchanged.
		return &Result{Schema: n.Schema(), Rows: in.Rows, Img: in.Img, RowIdx: in.RowIdx, ColMap: in.ColMap}, nil
	case *plan.OneRow:
		return &Result{Schema: n.Schema(), Rows: []types.Row{{}}}, nil
	case *plan.Window:
		return ex.execWindow(x, outer)
	case *plan.Spreadsheet:
		return ex.execSpreadsheet(x, outer)
	}
	return nil, fmt.Errorf("exec: unsupported node %T", n)
}

// ctx builds an evaluation context bound to a schema/row pair chained to
// the outer binding.
func (ex *Executor) ctx(bs *eval.BoundSchema, row types.Row, outer *eval.Binding) *eval.Context {
	return &eval.Context{
		Binding:  &eval.Binding{BS: bs, Row: row, Parent: outer},
		Subquery: &runner{ex: ex},
	}
}

// evalC evaluates e through its compiled form when one is attached,
// falling back to the interpreter (compilation disabled, or a plan built
// without the compile pass). The fallback is behaviorally identical.
func evalC(ctx *eval.Context, c eval.CompiledExpr, e sqlast.Expr) (types.Value, error) {
	if c.Valid() {
		return c.Eval(ctx)
	}
	return eval.Eval(ctx, e) // interp-ok: fallback when compilation is off
}

// evalBoolC is evalC under SQL three-valued logic (NULL is false).
func evalBoolC(ctx *eval.Context, c eval.CompiledExpr, e sqlast.Expr) (bool, error) {
	if c.Valid() {
		return c.EvalBool(ctx)
	}
	return eval.EvalBool(ctx, e) // interp-ok: fallback when compilation is off
}

// pickC returns element i of a compiled-expression list, or the invalid
// zero value when the list is short or absent.
func pickC(cs []eval.CompiledExpr, i int) eval.CompiledExpr {
	if i < len(cs) {
		return cs[i]
	}
	return eval.CompiledExpr{}
}

func (ex *Executor) execScan(n *plan.Scan, outer *eval.Binding) (*Result, error) {
	if res, err, ok := ex.execScanVec(n); ok {
		return res, err
	}
	return ex.scanRows(ex.tableRows(n.Table), n.Schema(), n.Filter, n.FilterC, outer)
}

// tableRows returns the rows a scan of t reads: the snapshot-pinned image
// under snapshot isolation, the live rows otherwise.
func (ex *Executor) tableRows(t *catalog.Table) []types.Row {
	if ex.Opts.Snap != nil {
		return ex.Opts.Snap.Pin(t).Rows
	}
	return t.Rows
}

// tableImage returns the columnar image and matching row set for scans of
// t. Under snapshot isolation both come from the pinned image, so the
// vectorized path can never pair a newer transposition with older rows.
func (ex *Executor) tableImage(t *catalog.Table) (*colstore.Table, []types.Row) {
	if ex.Opts.Snap != nil {
		im := ex.Opts.Snap.Pin(t)
		return im.Columnar(), im.Rows
	}
	return t.Columnar(), t.Rows
}

func (ex *Executor) execCTERef(n *plan.CTERef, outer *eval.Binding) (*Result, error) {
	ex.mu.Lock()
	cached := ex.cteCache[n.Def]
	ex.mu.Unlock()
	if cached == nil {
		res, err := ex.Execute(n.Def.Plan, nil)
		if err != nil {
			return nil, err
		}
		ex.mu.Lock()
		ex.cteCache[n.Def] = res
		cached = res
		ex.mu.Unlock()
	}
	return ex.scanRows(cached.Rows, n.Schema(), n.Filter, n.FilterC, outer)
}

func (ex *Executor) scanRows(src []types.Row, schema *eval.BoundSchema, filter sqlast.Expr, filterC eval.CompiledExpr, outer *eval.Binding) (*Result, error) {
	if filter == nil {
		rows := make([]types.Row, len(src))
		copy(rows, src)
		return &Result{Schema: schema, Rows: rows}, nil
	}
	// Morsel-parallel path. Predicates containing subqueries stay serial:
	// parallel workers must not race the correlated-subquery detection or
	// execute shared subquery plans (and their Models) concurrently. The
	// compiled predicate is shared across workers — its closures capture
	// only immutable compile-time data; per-row state lives in each
	// worker's own Context.
	if nm := ex.morselCount(len(src)); nm > 0 && !sqlast.HasSubquery(filter) {
		parts := make([][]types.Row, nm)
		wc := ex.workerCtxs(schema, outer)
		_, err := ex.forEachMorsel("filter", len(src), func(w int, m morsel) error {
			ctx := wc.get(w)
			var out []types.Row
			for _, r := range src[m.Lo:m.Hi] {
				ctx.Binding.Row = r
				ok, err := evalBoolC(ctx, filterC, filter)
				if err != nil {
					return err
				}
				if ok {
					out = append(out, r)
				}
			}
			parts[m.Idx] = out
			return nil
		})
		if err != nil {
			return nil, err
		}
		return &Result{Schema: schema, Rows: stitch(parts)}, nil
	}
	ctx := ex.ctx(schema, nil, outer)
	var rows []types.Row
	for _, r := range src {
		ctx.Binding.Row = r
		ok, err := evalBoolC(ctx, filterC, filter)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return &Result{Schema: schema, Rows: rows}, nil
}

func (ex *Executor) execFilter(n *plan.Filter, outer *eval.Binding) (*Result, error) {
	in, err := ex.Execute(n.Input, outer)
	if err != nil {
		return nil, err
	}
	if !ex.Opts.DisableVectorizedExec && vecRunnable(in, n.CondK) {
		return ex.vecFilter(in, n.CondK, in.Schema)
	}
	return ex.scanRows(in.Rows, in.Schema, n.Cond, n.CondC, outer)
}

func (ex *Executor) execProject(n *plan.Project, outer *eval.Binding) (*Result, error) {
	in, err := ex.Execute(n.Input, outer)
	if err != nil {
		return nil, err
	}
	// Vectorized path: a projection of plain column references is a gather.
	// Each morsel shares one flat value backing (rows are full-length
	// sub-slices, so per-row appends cannot clobber neighbours), and
	// columnar provenance composes through the ordinal map.
	if !ex.Opts.DisableVectorizedExec {
		if ords, ok := plainOrdinals(in.Schema, n.Exprs); ok {
			rows := make([]types.Row, len(in.Rows))
			gather := func(m morsel) {
				w := len(ords)
				flat := make([]types.Value, (m.Hi-m.Lo)*w)
				for i := m.Lo; i < m.Hi; i++ {
					out := flat[(i-m.Lo)*w : (i-m.Lo+1)*w : (i-m.Lo+1)*w]
					src := in.Rows[i]
					for j, o := range ords {
						out[j] = src[o]
					}
					rows[i] = out
				}
			}
			if nm := ex.morselCount(len(in.Rows)); nm > 0 {
				if _, err := ex.forEachMorsel("project", len(in.Rows), func(_ int, m morsel) error {
					gather(m)
					return nil
				}); err != nil {
					return nil, err
				}
			} else {
				gather(morsel{Lo: 0, Hi: len(in.Rows)})
			}
			res := &Result{Schema: n.Schema(), Rows: rows}
			if vecOK(in) && func() bool {
				for _, o := range ords {
					if vecCol(in, o) == nil {
						return false
					}
				}
				return true
			}() {
				cmap := make([]int, len(ords))
				for j, o := range ords {
					if in.ColMap != nil {
						cmap[j] = in.ColMap[o]
					} else {
						cmap[j] = o
					}
				}
				res.Img, res.RowIdx, res.ColMap = in.Img, in.RowIdx, cmap
			}
			return res, nil
		}
	}
	// Batch path: every output expression has a supported compute kernel, so
	// whole output vectors are computed per morsel and the result publishes a
	// fresh columnar image (see vecproject.go).
	if res, err, ok := ex.execProjectVec(n, in); ok {
		return res, err
	}
	projectMorsel := func(ctx *eval.Context, rows []types.Row, m morsel) error {
		for i := m.Lo; i < m.Hi; i++ {
			ctx.Binding.Row = in.Rows[i]
			out := make(types.Row, len(n.Exprs))
			for j, e := range n.Exprs {
				v, err := evalC(ctx, pickC(n.ExprsC, j), e)
				if err != nil {
					return err
				}
				out[j] = v
			}
			rows[i] = out
		}
		return nil
	}
	// Morsel-parallel path: output slots are preallocated, each worker
	// writes disjoint indices, so row order is trivially preserved.
	if nm := ex.morselCount(len(in.Rows)); nm > 0 && !anyHasSubquery(n.Exprs) {
		rows := make([]types.Row, len(in.Rows))
		wc := ex.workerCtxs(in.Schema, outer)
		if _, err := ex.forEachMorsel("project", len(in.Rows), func(w int, m morsel) error {
			return projectMorsel(wc.get(w), rows, m)
		}); err != nil {
			return nil, err
		}
		return &Result{Schema: n.Schema(), Rows: rows}, nil
	}
	ctx := ex.ctx(in.Schema, nil, outer)
	rows := make([]types.Row, len(in.Rows))
	if err := projectMorsel(ctx, rows, morsel{Lo: 0, Hi: len(in.Rows)}); err != nil {
		return nil, err
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}

// anyHasSubquery reports whether any expression contains a subquery; such
// operators keep the serial path (see scanRows).
func anyHasSubquery(es []sqlast.Expr) bool {
	for _, e := range es {
		if sqlast.HasSubquery(e) {
			return true
		}
	}
	return false
}

// stableSort is a bottom-up merge sort (stable, no stdlib sort.Slice churn
// in the hot path of large ORDER BY results).
func stableSort[T any](xs []T, cmp func(a, b T) int) {
	n := len(xs)
	if n < 2 {
		return
	}
	buf := make([]T, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j := lo, mid
			for k := lo; k < hi; k++ {
				if i < mid && (j >= hi || cmp(xs[j], xs[i]) >= 0) {
					buf[k] = xs[i]
					i++
				} else {
					buf[k] = xs[j]
					j++
				}
			}
		}
		copy(xs, buf)
	}
}

// FormatTable renders a result as an aligned text table (REPL, examples).
func (r *Result) FormatTable() string {
	var b strings.Builder
	names := make([]string, len(r.Schema.Cols))
	widths := make([]int, len(names))
	for i, c := range r.Schema.Cols {
		names[i] = c.Name
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			cells[i][j] = s
			if j < len(widths) && len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for j, s := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			for k := len(s); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for j := range names {
		if j > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[j]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}
