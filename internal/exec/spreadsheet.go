package exec

import (
	"time"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/core"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// execSpreadsheet materializes the working relation and reference sheets,
// then hands off to the core engine with the configured store factory and
// degree of parallelism.
func (ex *Executor) execSpreadsheet(n *plan.Spreadsheet, outer *eval.Binding) (*Result, error) {
	// Serving-path structure reuse: when the plan is cached and a pristine
	// access structure exists for this node, clone it and skip both the
	// input scan and the partition build — the cache layer has already
	// verified that every dependency's table version is unchanged, so the
	// build would reproduce the cached structure bit for bit. Only
	// uncorrelated spreadsheets qualify (an outer binding changes the
	// input).
	var prebuilt *core.PartitionSet
	if ex.Opts.Structs != nil && outer == nil {
		if ps, ok := ex.Opts.Structs.Lookup(n); ok {
			prebuilt = ps.CloneForReuse()
		}
	}
	var inRows []types.Row
	var inCols *core.ColSource
	if prebuilt == nil {
		in, err := ex.Execute(n.Input, outer)
		if err != nil {
			return nil, err
		}
		inRows = in.Rows
		// Only the leading PBY+DBY ordinals are key-encoded by the build.
		inCols = ex.vecColSource(in, n.Model.NPby+n.Model.NDby)
	}
	for i, rp := range n.RefPlans {
		res, err := ex.Execute(rp, outer)
		if err != nil {
			return nil, err
		}
		meta := n.Model.Refs[i]
		meta.Data = make(map[string]types.Row, len(res.Rows))
		nd := len(meta.Dims)
		for _, row := range res.Rows {
			meta.Data[types.Key(row[:nd]...)] = row
		}
	}

	newStore := func() blockstore.Store { return blockstore.NewMem() }
	if ex.Opts.MemoryBudget > 0 {
		budget, dir := ex.Opts.MemoryBudget, ex.Opts.SpillDir
		async := !ex.Opts.DisableAsyncSpill
		newStore = func() blockstore.Store {
			return blockstore.NewSpill(blockstore.Config{BudgetBytes: budget, Dir: dir, RowsPerBlock: 16, Async: async})
		}
	}
	// Bucket choice uses the requested PE count so partitioning (and
	// result row order) stays deterministic regardless of budget grants.
	buckets := ex.Opts.Buckets
	if buckets <= 0 {
		buckets = core.ChooseBuckets(len(inRows), 64, ex.Opts.MemoryBudget, ex.Opts.Parallel)
	}
	// Scatter-gather: ship the working rows to the worker fleet when the
	// planner marked this node distributable. The coordinator merges
	// partition frames back in this process's bucket/frame order, so a
	// handled result is byte-identical to running the model below. A
	// structure-reuse hit (prebuilt) skips distribution — cloning the
	// cached build is strictly cheaper than a network round trip.
	if d := ex.Opts.Dist; d != nil && outer == nil && prebuilt == nil && n.DistNote == plan.DistYes {
		rows, handled, err := d.DistributeSheet(ex, n, inRows, buckets)
		if err != nil {
			return nil, err
		}
		if handled {
			// DropCols is always 0 here: the pass rejects promoted dims.
			return &Result{Schema: n.Schema(), Rows: rows}, nil
		}
	}
	// Spreadsheet PEs and partition-build workers draw from the same core
	// budget as the operator worker pools, so Workers>1 plus Parallel>1
	// cannot oversubscribe the host. Build and PE evaluation are sequential
	// phases inside Run, so one grant — sized for the larger of the two —
	// covers both.
	par := ex.Opts.Parallel
	bw := ex.workers()
	if ex.Opts.DisableParallelBuild {
		bw = 1
	}
	need := par
	if bw > need {
		need = bw
	}
	granted := 0
	if need > 1 {
		granted = ex.bud.tryAcquire(need - 1)
	}
	if par > 1+granted {
		par = 1 + granted
	}
	if bw > 1+granted {
		bw = 1 + granted
	}
	// On a cache miss, publish a pristine copy of the structure right after
	// the build (before any formula runs); on reuse the executor is already
	// evaluating a private clone.
	var onBuilt func(*core.PartitionSet)
	if structs := ex.Opts.Structs; structs != nil && outer == nil && prebuilt == nil {
		onBuilt = func(ps *core.PartitionSet) {
			if cp := ps.CloneForReuse(); cp != nil {
				structs.Store(n, cp)
			}
		}
	}
	start := time.Now()
	rows, stats, err := n.Model.Run(inRows, core.RunOptions{
		Ctx:                   ex.Opts.Ctx,
		Parallel:              par,
		BuildWorkers:          bw,
		Buckets:               buckets,
		NewStore:              newStore,
		Subquery:              &runner{ex: ex},
		Promoted:              n.Promoted,
		DisableSingleScan:     ex.Opts.DisableSingleScan,
		DisableRangeProbe:     ex.Opts.DisableRangeProbe,
		UseBTreeIndex:         ex.Opts.UseBTreeIndex,
		DisableCompiledEval:   ex.Opts.DisableCompiledEval,
		DisableVectorizedScan: ex.Opts.DisableVectorizedExec,
		DisableVectorizedRules: ex.Opts.DisableVectorizedExec ||
			ex.Opts.DisableVectorizedRules,
		VecMinRows: ex.Opts.VecMinRows,
		Cols:       inCols,
		Prebuilt:   prebuilt,
		OnBuilt:    onBuilt,
		// FastLocalPath is only set for unbudgeted sessions (see
		// db.newExecutor), so the stores above are memory-resident and rows
		// may cross the store boundary by reference; the MemoryBudget guard
		// repeats the invariant for callers constructing Options directly.
		FastLocal: ex.Opts.FastLocalPath && ex.Opts.MemoryBudget == 0,
	})
	ex.bud.release(granted)
	if prebuilt != nil {
		ex.mu.Lock()
		ex.ExecStats.Cache.StructuresReused++
		ex.mu.Unlock()
	}
	if ex.Opts.Parallel > 1 {
		ex.recordOp(OpStat{Op: "spreadsheet", Rows: len(inRows), Workers: par, Elapsed: time.Since(start)})
	}
	if err != nil {
		return nil, err
	}
	ex.mu.Lock()
	ex.SheetStats.Add(stats)
	ex.mu.Unlock()

	if n.DropCols > 0 {
		for i, r := range rows {
			rows[i] = r[n.DropCols:]
		}
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}
