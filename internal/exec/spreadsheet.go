package exec

import (
	"time"

	"sqlsheet/internal/blockstore"
	"sqlsheet/internal/core"
	"sqlsheet/internal/eval"
	"sqlsheet/internal/plan"
	"sqlsheet/internal/types"
)

// execSpreadsheet materializes the working relation and reference sheets,
// then hands off to the core engine with the configured store factory and
// degree of parallelism.
func (ex *Executor) execSpreadsheet(n *plan.Spreadsheet, outer *eval.Binding) (*Result, error) {
	in, err := ex.Execute(n.Input, outer)
	if err != nil {
		return nil, err
	}
	for i, rp := range n.RefPlans {
		res, err := ex.Execute(rp, outer)
		if err != nil {
			return nil, err
		}
		meta := n.Model.Refs[i]
		meta.Data = make(map[string]types.Row, len(res.Rows))
		nd := len(meta.Dims)
		for _, row := range res.Rows {
			meta.Data[types.Key(row[:nd]...)] = row
		}
	}

	newStore := func() blockstore.Store { return blockstore.NewMem() }
	if ex.Opts.MemoryBudget > 0 {
		budget, dir := ex.Opts.MemoryBudget, ex.Opts.SpillDir
		async := !ex.Opts.DisableAsyncSpill
		newStore = func() blockstore.Store {
			return blockstore.NewSpill(blockstore.Config{BudgetBytes: budget, Dir: dir, RowsPerBlock: 16, Async: async})
		}
	}
	// Bucket choice uses the requested PE count so partitioning (and
	// result row order) stays deterministic regardless of budget grants.
	buckets := ex.Opts.Buckets
	if buckets <= 0 {
		buckets = core.ChooseBuckets(len(in.Rows), 64, ex.Opts.MemoryBudget, ex.Opts.Parallel)
	}
	// Spreadsheet PEs and partition-build workers draw from the same core
	// budget as the operator worker pools, so Workers>1 plus Parallel>1
	// cannot oversubscribe the host. Build and PE evaluation are sequential
	// phases inside Run, so one grant — sized for the larger of the two —
	// covers both.
	par := ex.Opts.Parallel
	bw := ex.workers()
	if ex.Opts.DisableParallelBuild {
		bw = 1
	}
	need := par
	if bw > need {
		need = bw
	}
	granted := 0
	if need > 1 {
		granted = ex.bud.tryAcquire(need - 1)
	}
	if par > 1+granted {
		par = 1 + granted
	}
	if bw > 1+granted {
		bw = 1 + granted
	}
	start := time.Now()
	rows, stats, err := n.Model.Run(in.Rows, core.RunOptions{
		Parallel:            par,
		BuildWorkers:        bw,
		Buckets:             buckets,
		NewStore:            newStore,
		Subquery:            &runner{ex: ex},
		Promoted:            n.Promoted,
		DisableSingleScan:   ex.Opts.DisableSingleScan,
		DisableRangeProbe:   ex.Opts.DisableRangeProbe,
		UseBTreeIndex:       ex.Opts.UseBTreeIndex,
		DisableCompiledEval: ex.Opts.DisableCompiledEval,
	})
	ex.bud.release(granted)
	if ex.Opts.Parallel > 1 {
		ex.recordOp(OpStat{Op: "spreadsheet", Rows: len(in.Rows), Workers: par, Elapsed: time.Since(start)})
	}
	if err != nil {
		return nil, err
	}
	ex.mu.Lock()
	ex.SheetStats.Add(stats)
	ex.mu.Unlock()

	if n.DropCols > 0 {
		for i, r := range rows {
			rows[i] = r[n.DropCols:]
		}
	}
	return &Result{Schema: n.Schema(), Rows: rows}, nil
}
