package exec

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlsheet/internal/eval"
	"sqlsheet/internal/types"
)

// This file is the morsel-driven parallel execution layer. Operator inputs
// (materialized Result row slices) are split into fixed-size morsels — row
// ranges — dispatched to a worker pool sized by Options.Workers. The hot
// operators (filter/scan predicates, projection, hash-join build/probe,
// group-by) process morsels with per-worker eval.Contexts and stitch their
// outputs back together in morsel order, so the parallel paths produce
// byte-identical results to the serial engine.
//
// Determinism invariant: morsel boundaries are a pure function of the input
// size and the configured morsel size — never of the worker count. Any
// result assembled in morsel order (including per-morsel partial aggregates
// merged in morsel order) is therefore bit-identical for every Workers
// setting, floating-point accumulation included.

// defaultMorselSize is the number of rows per morsel. Small enough to load-
// balance skewed work, large enough that dispatch overhead is negligible.
const defaultMorselSize = 1024

// morsel is one contiguous row range [Lo, Hi) of an operator input.
type morsel struct {
	Idx    int // position in morsel order; output stitching key
	Lo, Hi int
}

// makeMorsels splits n rows into ceil(n/size) contiguous ranges.
func makeMorsels(n, size int) []morsel {
	ms := make([]morsel, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		ms = append(ms, morsel{Idx: len(ms), Lo: lo, Hi: hi})
	}
	return ms
}

// workers returns the effective operator worker-pool size:
// Options.Workers, defaulting to runtime.NumCPU() when zero.
func (ex *Executor) workers() int {
	w := ex.Opts.Workers
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// morselSize returns the configured morsel size in rows.
func (ex *Executor) morselSize() int {
	if ex.Opts.MorselSize > 0 {
		return ex.Opts.MorselSize
	}
	return defaultMorselSize
}

// morselCount returns the number of morsels the parallel paths would use for
// n input rows, or 0 when the input is too small to be worth splitting (the
// caller keeps its serial path).
func (ex *Executor) morselCount(n int) int {
	size := ex.morselSize()
	if n < 2*size {
		return 0
	}
	return (n + size - 1) / size
}

// budget is the query's shared core budget. Operator worker pools and
// spreadsheet PEs draw extra-goroutine slots from the same pool, so a query
// combining Workers>1 with spreadsheet Parallel>1 cannot oversubscribe the
// host. The caller's own goroutine never needs a token — acquisition is
// non-blocking and always leaves at least one runner — so sharing the pool
// across nested operators cannot deadlock.
type budget struct {
	sem chan struct{}
}

// newBudget creates a budget with the given number of extra-goroutine slots
// (total concurrency = extra + the caller's goroutine).
func newBudget(extra int) *budget {
	if extra < 0 {
		extra = 0
	}
	b := &budget{sem: make(chan struct{}, extra)}
	for i := 0; i < extra; i++ {
		b.sem <- struct{}{}
	}
	return b
}

// tryAcquire takes up to want tokens without blocking and returns the number
// actually granted.
func (b *budget) tryAcquire(want int) int {
	got := 0
	for got < want {
		select {
		case <-b.sem:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n tokens to the pool.
func (b *budget) release(n int) {
	for i := 0; i < n; i++ {
		b.sem <- struct{}{}
	}
}

// OpStat records one parallel operator execution.
type OpStat struct {
	Op      string        // operator: filter, project, join-build, join-probe, group-by, spreadsheet
	Rows    int           // input rows processed
	Morsels int           // morsel count (0 for non-morsel operators)
	Workers int           // goroutines actually used after budget arbitration
	Elapsed time.Duration // wall-clock time of the operator
}

// Stats aggregates per-operator measurements for one statement; the DB layer
// threads it into EXPLAIN ANALYZE-style output and cmd/experiments reports.
type Stats struct {
	Ops []OpStat
	// Cache reports the serving-path cache's involvement in the statement.
	Cache CacheStats
}

// String renders the stats as an aligned table, one line per operator.
func (s Stats) String() string {
	if len(s.Ops) == 0 {
		return "(no parallel operators)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %8s %8s %12s\n", "operator", "rows", "morsels", "workers", "elapsed")
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "%-12s %10d %8d %8d %12s\n", op.Op, op.Rows, op.Morsels, op.Workers, op.Elapsed)
	}
	return b.String()
}

// recordOp appends one operator measurement (workers may race on the stats).
func (ex *Executor) recordOp(st OpStat) {
	ex.mu.Lock()
	ex.ExecStats.Ops = append(ex.ExecStats.Ops, st)
	ex.mu.Unlock()
}

// forEachMorsel splits n input rows into morsels and runs fn over them on
// the worker pool; fn receives the worker index (for per-worker state) and
// the morsel. It returns used=false — doing nothing — when the input is
// below the morsel threshold; the caller then keeps its serial path.
//
// All morsels are processed even after a failure, and the error returned is
// the one from the lowest-indexed failing morsel: since each morsel scans
// its rows in order, that is exactly the error the serial engine would have
// reported first.
func (ex *Executor) forEachMorsel(op string, n int, fn func(worker int, m morsel) error) (bool, error) {
	if ex.morselCount(n) == 0 {
		return false, nil
	}
	start := time.Now()
	ms := makeMorsels(n, ex.morselSize())
	errs := make([]error, len(ms))
	var next atomic.Int64
	work := func(worker int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(ms) {
				return
			}
			// Cancellation point: each morsel claim polls the context, so a
			// timed-out query stops within one morsel of work per worker.
			if err := ex.checkCtx(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(worker, ms[i])
		}
	}
	w := ex.runPool(len(ms), work)
	ex.recordOp(OpStat{Op: op, Rows: n, Morsels: len(ms), Workers: w, Elapsed: time.Since(start)})
	for _, err := range errs {
		if err != nil {
			return true, err
		}
	}
	return true, nil
}

// parallelN runs fn(0..n-1) on the worker pool. Used for partition-wise
// phases (hash-join partition merges) whose task count is already small; no
// morsel threshold and no stats entry of its own.
func (ex *Executor) parallelN(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var next atomic.Int64
	ex.runPool(n, func(int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runPool executes work on up to min(workers, tasks) goroutines, drawing
// extra slots from the shared budget; the calling goroutine is always worker
// 0. Returns the number of workers used.
func (ex *Executor) runPool(tasks int, work func(worker int)) int {
	w := ex.workers()
	if w > tasks {
		w = tasks
	}
	extra := 0
	if w > 1 {
		extra = ex.bud.tryAcquire(w - 1)
	}
	w = 1 + extra
	if w == 1 {
		work(0)
		return 1
	}
	var wg sync.WaitGroup
	for wk := 1; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			work(wk)
		}(wk)
	}
	work(0)
	wg.Wait()
	ex.bud.release(extra)
	return w
}

// workerCtxs lazily builds one eval.Context per worker over the same schema
// and outer binding. Each worker owns its Binding, so binding rows during
// morsel processing is race-free; hooks and the subquery runner are shared
// (the relational runner is mutex-guarded).
type workerCtxs struct {
	proto *eval.Context
	ctxs  []*eval.Context
}

func (ex *Executor) workerCtxs(bs *eval.BoundSchema, outer *eval.Binding) *workerCtxs {
	return &workerCtxs{
		proto: ex.ctx(bs, nil, outer),
		ctxs:  make([]*eval.Context, ex.workers()),
	}
}

// get returns worker w's context, cloning the prototype on first use. A
// worker index is only ever used by one goroutine at a time, so the lazy
// fill needs no lock.
func (wc *workerCtxs) get(w int) *eval.Context {
	if wc.ctxs[w] == nil {
		wc.ctxs[w] = wc.proto.Clone()
	}
	return wc.ctxs[w]
}

// fnv32a hashes a composite key for hash-partition selection (FNV-1a).
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// fnv32aBytes is fnv32a over a byte slice, for allocation-free probe keys.
func fnv32aBytes(b []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= prime32
	}
	return h
}

// stitch concatenates per-morsel outputs in morsel order, preserving the
// serial engine's row order exactly.
func stitch(parts [][]types.Row) []types.Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]types.Row, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
