package sqlsheet_test

import (
	"strings"
	"testing"
)

func TestViewWithSpreadsheetPrunes(t *testing.T) {
	// The paper's §4 scenario verbatim: applications encapsulate formulas
	// in views; user queries over the view prune unneeded formulas.
	db := newFactDB(t)
	db.MustExec(`CREATE VIEW forecasts AS
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		(
		F1: s['dvd',2000] = s['dvd', 1999]*1.2,
		F2: s['vcr',2000] = s['vcr',1998] + s['vcr',1999],
		F3: s['tv', 2000] = avg(s)['tv', 1990<t<2000]
		)`)
	explain, err := db.Explain(`SELECT * FROM forecasts WHERE p IN ('dvd', 'vcr', 'video')`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "pruned formula f3") {
		t.Errorf("view query did not prune F3:\n%s", explain)
	}
	res, err := db.Query(`SELECT p, s FROM forecasts WHERE r = 'west' AND p = 'dvd' AND t = 2000`)
	if err != nil {
		t.Fatal(err)
	}
	// west dvd 1999 = 9 → 10.8.
	approx(t, res.Rows[0][1], 10.8, "view result")
	// The view is reusable with different predicates (fresh plan each time).
	res, err = db.Query(`SELECT p, s FROM forecasts WHERE r = 'west' AND p = 'tv' AND t = 2000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("second view query rows = %d", len(res.Rows))
	}
}

func TestViewWithAggregatesReplans(t *testing.T) {
	// Views whose MEA items carry aggregates must plan repeatedly without
	// corrupting the stored AST.
	db := newFactDB(t)
	db.MustExec(`CREATE VIEW totals AS
		SELECT r, t, s FROM f GROUP BY r, t
		SPREADSHEET PBY(r) DBY (t) MEA (sum(s) s)
		( UPSERT s[2005] = s[2002] * 2 )`)
	for i := 0; i < 3; i++ {
		res, err := db.Query(`SELECT s FROM totals WHERE r = 'west' AND t = 2005`)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		// west 2002 total = 12 + 24 + 36 = 72 → 144.
		approx(t, res.Rows[0][0], 144, "aggregated view")
	}
}

func TestViewErrorsAndDrop(t *testing.T) {
	db := newFactDB(t)
	if _, err := db.Exec(`CREATE VIEW v AS SELECT nope FROM f`); err == nil {
		t.Error("invalid view definition must fail at CREATE")
	}
	db.MustExec(`CREATE VIEW v AS SELECT p FROM f`)
	if _, err := db.Exec(`CREATE VIEW v AS SELECT p FROM f`); err == nil {
		t.Error("duplicate view must fail")
	}
	if _, err := db.Exec(`CREATE TABLE v (a INT)`); err == nil {
		t.Error("table/view name conflict must fail")
	}
	db.MustExec(`DROP VIEW v`)
	if _, err := db.Query(`SELECT * FROM v`); err == nil {
		t.Error("dropped view must be gone")
	}
	if _, err := db.Exec(`DROP TABLE nonexistent`); err == nil {
		t.Error("dropping unknown object must fail")
	}
}

func TestMaterializedViewFullCycle(t *testing.T) {
	db := newFactDB(t)
	db.MustExec(`CREATE MATERIALIZED VIEW mv AS
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2002] )`)
	res, err := db.Query(`SELECT s FROM mv WHERE r = 'west' AND p = 'video'`)
	if err != nil {
		t.Fatal(err)
	}
	// west tv 2002 = 36, vcr 2002 = 24 → 60.
	approx(t, res.Rows[0][0], 60, "materialized value")

	// No changes: refresh is a no-op.
	rr := db.MustExec(`REFRESH mv`)
	if rr.Rows[0][0].String() != "noop" {
		t.Errorf("refresh mode = %v", rr.Rows[0])
	}

	// Append new fact rows for ONE partition; refresh must be incremental
	// and only that partition recomputed.
	db.MustExec(`INSERT INTO f VALUES ('west', 'tv', 2003, 50, 25), ('west', 'vcr', 2003, 7, 3)`)
	rr = db.MustExec(`REFRESH mv`)
	if rr.Rows[0][0].String() != "incremental" {
		t.Fatalf("refresh mode = %v", rr.Rows[0])
	}
	res, err = db.Query(`SELECT p, t, s FROM mv WHERE r = 'west' AND t = 2003 ORDER BY p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("new rows not propagated: %v", res.Rows)
	}
	// The untouched east partition must be intact.
	res, err = db.Query(`SELECT s FROM mv WHERE r = 'east' AND p = 'video'`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("east partition lost: %v %v", res.Rows, err)
	}

	// Incremental result must equal a full recompute.
	incr, err := db.Query(`SELECT * FROM mv ORDER BY r, p, t`)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`REFRESH mv FULL`)
	full, err := db.Query(`SELECT * FROM mv ORDER BY r, p, t`)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(incr, full) {
		t.Fatal("incremental refresh diverged from full recompute")
	}
}

func TestMaterializedViewFullFallbacks(t *testing.T) {
	db := newFactDB(t)
	db.MustExec(`CREATE TABLE budget (r TEXT, factor FLOAT)`)
	db.MustExec(`INSERT INTO budget VALUES ('west', 1.5), ('east', 2.0)`)
	// A reference sheet over a second table: changes to it force a full
	// refresh.
	db.MustExec(`CREATE MATERIALIZED VIEW mv2 AS
		SELECT r, t, s FROM f GROUP BY r, t
		SPREADSHEET
		  REFERENCE b ON (SELECT r, factor FROM budget) DBY(r) MEA(factor)
		  PBY(r) DBY (t) MEA (sum(s) s)
		( UPSERT s[2005] = s[2002] * factor[cv(r)] )`)
	before, err := db.Query(`SELECT s FROM mv2 WHERE r = 'west' AND t = 2005`)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, before.Rows[0][0], 72*1.5, "mv2 initial")

	db.MustExec(`INSERT INTO budget VALUES ('north', 9.9)`)
	rr := db.MustExec(`REFRESH mv2`)
	if rr.Rows[0][0].String() != "full" {
		t.Errorf("secondary-source change must force full refresh, got %v", rr.Rows[0])
	}

	// A view without PBY columns always refreshes fully.
	db.MustExec(`CREATE MATERIALIZED VIEW mv3 AS
		SELECT t, s FROM f WHERE r = 'west' AND p = 'dvd'
		SPREADSHEET DBY (t) MEA (s) ( UPSERT s[2005] = 1 )`)
	db.MustExec(`INSERT INTO f VALUES ('west', 'dvd', 2004, 3, 1)`)
	rr = db.MustExec(`REFRESH mv3`)
	if rr.Rows[0][0].String() != "full" {
		t.Errorf("PBY-less view must refresh fully, got %v", rr.Rows[0])
	}
}

func TestMaterializedViewUnknownRefresh(t *testing.T) {
	db := newFactDB(t)
	if _, err := db.Exec(`REFRESH nothere`); err == nil {
		t.Error("refreshing unknown MV must fail")
	}
	db.MustExec(`CREATE VIEW pv AS SELECT p FROM f`)
	if _, err := db.Exec(`REFRESH pv`); err == nil {
		t.Error("refreshing a plain view must fail")
	}
}

func TestMVExactMatchRewrite(t *testing.T) {
	db := newFactDB(t)
	db.MustExec(`CREATE MATERIALIZED VIEW mvr AS
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2002] )`)

	q := `SELECT * FROM
		(SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		 ( UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2002] )) v
		WHERE p = 'video' ORDER BY r`
	// Without rewrite: the plan contains a Spreadsheet node.
	explain, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "Spreadsheet") {
		t.Fatalf("expected spreadsheet plan:\n%s", explain)
	}
	base, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	// With rewrite: the plan scans the MV instead.
	cfg := db.Options()
	cfg.EnableMVRewrite = true
	db.Configure(cfg)
	explain, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "Spreadsheet") || !strings.Contains(explain, "Scan mvr") {
		t.Fatalf("expected MV scan plan:\n%s", explain)
	}
	rewritten, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(base, rewritten) {
		t.Fatal("MV rewrite changed results")
	}

	// A near-miss definition (different constant) must NOT rewrite.
	explain, err = db.Explain(`SELECT * FROM
		(SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		 ( UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2001] )) v
		WHERE p = 'video'`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(explain, "Scan mvr") {
		t.Fatalf("near-miss must not rewrite:\n%s", explain)
	}
}

func TestUpdateForcesFullMVRefresh(t *testing.T) {
	// An in-place UPDATE leaves the row count unchanged; the version
	// counter must still force a full (correct) refresh rather than a
	// stale noop.
	db := newFactDB(t)
	db.MustExec(`CREATE MATERIALIZED VIEW um AS
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2002] )`)
	db.MustExec(`UPDATE f SET s = 1000 WHERE r = 'west' AND p = 'tv' AND t = 2002`)
	rr := db.MustExec(`REFRESH um`)
	if rr.Rows[0][0].String() != "full" {
		t.Fatalf("in-place update must force full refresh, got %v", rr.Rows[0])
	}
	res, err := db.Query(`SELECT s FROM um WHERE r = 'west' AND p = 'video'`)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Rows[0][0], 1024, "refreshed value") // 1000 + vcr 24
}
