package sqlsheet_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sqlsheet"
)

// TestWindowOracleProperty checks the window executor against a naive Go
// reimplementation on random data: cumulative SUM, RANK and LAG over a
// random partitioning.
func TestWindowOracleProperty(t *testing.T) {
	type rec struct {
		g, t int
		v    float64
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		recs := make([]rec, n)
		db := sqlsheet.Open()
		db.MustExec(`CREATE TABLE w (g INT, t INT, v FLOAT, id INT)`)
		for i := range recs {
			recs[i] = rec{g: rng.Intn(3), t: rng.Intn(10), v: float64(rng.Intn(20))}
			db.MustExec(fmt.Sprintf(`INSERT INTO w VALUES (%d, %d, %g, %d)`,
				recs[i].g, recs[i].t, recs[i].v, i))
		}
		res, err := db.Query(`
			SELECT id,
			       sum(v) OVER (PARTITION BY g ORDER BY t, id) cume,
			       rank() OVER (PARTITION BY g ORDER BY t) rk,
			       lag(v) OVER (PARTITION BY g ORDER BY t, id) prev
			FROM w`)
		if err != nil {
			t.Log(err)
			return false
		}
		got := map[int64][3]sqlsheet.Value{}
		for _, row := range res.Rows {
			got[row[0].Int()] = [3]sqlsheet.Value{row[1], row[2], row[3]}
		}
		// Naive oracle.
		for g := 0; g < 3; g++ {
			var idx []int
			for i, r := range recs {
				if r.g == g {
					idx = append(idx, i)
				}
			}
			sort.SliceStable(idx, func(a, b int) bool {
				if recs[idx[a]].t != recs[idx[b]].t {
					return recs[idx[a]].t < recs[idx[b]].t
				}
				return idx[a] < idx[b]
			})
			cume := 0.0
			for k, i := range idx {
				cume += recs[i].v
				w := got[int64(i)]
				if math.Abs(w[0].Float()-cume) > 1e-9 {
					t.Logf("seed %d: cume id=%d got %v want %g", seed, i, w[0], cume)
					return false
				}
				// rank: 1 + count of rows with strictly smaller t.
				rk := 1
				for _, j := range idx {
					if recs[j].t < recs[i].t {
						rk++
					}
				}
				if w[1].Int() != int64(rk) {
					t.Logf("seed %d: rank id=%d got %v want %d", seed, i, w[1], rk)
					return false
				}
				if k == 0 {
					if !w[2].IsNull() {
						t.Logf("seed %d: first lag id=%d got %v", seed, i, w[2])
						return false
					}
				} else if math.Abs(w[2].Float()-recs[idx[k-1]].v) > 1e-9 {
					t.Logf("seed %d: lag id=%d got %v want %g", seed, i, w[2], recs[idx[k-1]].v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSlidingFrameMatchesRecompute: the Add/Remove sliding evaluation must
// equal per-row recomputation (forced via min, which has no inverse).
func TestSlidingFrameMatchesRecompute(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		w := int(width%5) + 1
		rng := rand.New(rand.NewSource(seed))
		db := sqlsheet.Open()
		db.MustExec(`CREATE TABLE s (t INT, v FLOAT)`)
		n := 20
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(rng.Intn(50))
			db.MustExec(fmt.Sprintf(`INSERT INTO s VALUES (%d, %g)`, i, vals[i]))
		}
		res, err := db.Query(fmt.Sprintf(`
			SELECT t,
			       sum(v) OVER (ORDER BY t ROWS BETWEEN %d PRECEDING AND CURRENT ROW) sw,
			       avg(v) OVER (ORDER BY t ROWS BETWEEN %d PRECEDING AND 1 FOLLOWING) aw
			FROM s ORDER BY t`, w, w))
		if err != nil {
			t.Log(err)
			return false
		}
		for k, row := range res.Rows {
			lo := k - w
			if lo < 0 {
				lo = 0
			}
			sum := 0.0
			for i := lo; i <= k; i++ {
				sum += vals[i]
			}
			if math.Abs(row[1].Float()-sum) > 1e-9 {
				t.Logf("seed %d w %d: sum[%d] got %v want %g", seed, w, k, row[1], sum)
				return false
			}
			hi := k + 1
			if hi > n-1 {
				hi = n - 1
			}
			asum, cnt := 0.0, 0
			for i := lo; i <= hi; i++ {
				asum += vals[i]
				cnt++
			}
			if math.Abs(row[2].Float()-asum/float64(cnt)) > 1e-9 {
				t.Logf("seed %d w %d: avg[%d] got %v want %g", seed, w, k, row[2], asum/float64(cnt))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
