package sqlsheet

import (
	"context"
	"fmt"

	"sqlsheet/internal/apb"
	"sqlsheet/internal/parser"
	"sqlsheet/internal/sqlast"
	"sqlsheet/internal/types"
	"sqlsheet/internal/wal"
)

// SyncMode re-exports the write-ahead log's durability modes.
type SyncMode = wal.SyncMode

// Sync modes for EnableWAL: SyncGroup coalesces post-apply fsyncs across
// concurrent committers (the default), SyncAlways fsyncs before every
// statement applies, SyncNone never fsyncs.
const (
	SyncGroup  = wal.SyncGroup
	SyncAlways = wal.SyncAlways
	SyncNone   = wal.SyncNone
)

// ParseSyncMode converts a -fsync flag value ("group", "always", "none").
func ParseSyncMode(s string) (SyncMode, error) { return wal.ParseSyncMode(s) }

// WALCounters re-exports the log's cumulative statistics for monitoring.
type WALCounters = wal.Counters

// walDefaultAutoCheckpoint compacts the log once it exceeds 64 MiB.
const walDefaultAutoCheckpoint int64 = 64 << 20

// EnableWAL attaches a write-ahead log in dir, first replaying any existing
// log so the database recovers the state it last acknowledged: statements
// re-execute in log order (re-failing deterministically where the original
// failed, reproducing partial-application states bit for bit), programmatic
// loads re-apply their recorded rows, and APB installs regenerate from
// their recorded scale. Call it on a freshly opened DB before sharing it
// between goroutines; subsequent mutations are logged before they apply and
// acknowledged only after their records are durable per mode.
func (db *DB) EnableWAL(dir string, mode SyncMode) error {
	s := db.sess.Load()
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	if db.wal != nil {
		return fmt.Errorf("sqlsheet: wal already enabled")
	}
	l, err := wal.Open(dir, mode, 0)
	if err != nil {
		return err
	}
	db.walReplay = true
	err = l.Replay(func(rec wal.Record) error {
		db.applyWALRecord(s, rec)
		return nil
	})
	db.walReplay = false
	if err != nil {
		l.Close()
		return err
	}
	db.cat.PublishAll()
	db.wal = l
	if db.walAutoCP <= 0 {
		db.walAutoCP = walDefaultAutoCheckpoint
	}
	// A long recovery log means the previous process never compacted;
	// checkpoint now so the next restart replays one segment.
	if l.SizeBytes() > db.walAutoCP {
		return db.checkpointLocked()
	}
	return nil
}

// Close releases the write-ahead log (fsyncing per mode on the way out).
// It is a no-op when no log is attached; the in-memory database remains
// usable but further mutations are no longer logged.
func (db *DB) Close() error {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.wal = nil
	return err
}

// WALEnabled reports whether a write-ahead log is attached.
func (db *DB) WALEnabled() bool {
	db.stmtMu.RLock()
	defer db.stmtMu.RUnlock()
	return db.wal != nil
}

// WALCounters snapshots the log's cumulative statistics; ok is false when
// no log is attached.
func (db *DB) WALCounters() (WALCounters, bool) {
	db.stmtMu.RLock()
	l := db.wal
	db.stmtMu.RUnlock()
	if l == nil {
		return WALCounters{}, false
	}
	return l.Counters(), true
}

// applyWALRecord replays one log record against the catalog. Replay is
// tolerant: undecodable or re-failing records leave exactly the state the
// original failure left (logging happens before applying, so a failed
// statement is in the log and re-fails the same way), and never abort
// recovery.
func (db *DB) applyWALRecord(s *session, rec wal.Record) {
	switch rec.Kind {
	case wal.KindReset:
		// A checkpoint's leading marker: the records that follow rebuild
		// the full state, so everything replayed so far is dropped.
		// Replay already starts at the newest checkpoint segment, and
		// recovery runs on a fresh DB, so normally there is nothing to
		// drop — this keeps the record's meaning honest regardless.
		for _, name := range db.cat.MatViewNames() {
			db.cat.DropObject(name)
		}
		for _, name := range db.cat.ViewNames() {
			db.cat.DropObject(name)
		}
		for _, name := range db.cat.Names() {
			db.cat.Drop(name)
		}
	case wal.KindStmt:
		stmts, err := parser.Parse(string(rec.Data))
		if err != nil {
			return
		}
		for _, stmt := range stmts {
			if _, ok := stmt.(*sqlast.SelectStmt); ok {
				continue
			}
			ex := db.newExecutor(context.Background(), s, nil)
			_, _ = ex.ExecStatement(stmt)
			db.cat.PublishAll()
		}
	case wal.KindCreate:
		name, cols, err := wal.DecodeCreate(rec.Data)
		if err != nil {
			return
		}
		_, _ = db.cat.Create(name, types.NewSchema(cols...))
	case wal.KindRows:
		table, rows, err := wal.DecodeRows(rec.Data)
		if err != nil {
			return
		}
		t, ok := db.cat.Get(table)
		if !ok {
			return
		}
		for _, row := range rows {
			if t.Insert(row) != nil {
				break
			}
		}
		db.cat.PublishAll()
	case wal.KindAPB:
		p, err := wal.DecodeAPB(rec.Data)
		if err != nil {
			return
		}
		d := apb.Generate(apb.Config{
			Seed:          p.Seed,
			ProductFanout: p.ProductFanout,
			Channels:      p.Channels,
			Customers:     p.Customers,
			Years:         p.Years,
			Density:       p.Density,
		})
		_ = d.Install(db.cat)
		db.cat.PublishAll()
	}
}

// logRecord appends one record to the write-ahead log; it is a no-op when
// no log is attached or recovery is replaying. The caller holds the
// exclusive statement lock.
func (db *DB) logRecord(kind byte, data []byte) (wal.Pos, error) {
	if db.wal == nil || db.walReplay {
		return wal.Pos{}, nil
	}
	return db.wal.Append(kind, data)
}

// walCommit makes everything up to pos durable (group commit); called after
// the statement lock is released so fsyncs coalesce across writers instead
// of serializing them. Running outside the lock means it can race Close,
// so the log pointer is loaded under the shared lock; if Close won the
// race the statement's record was fsynced on the way out (Log.Commit also
// treats an already-closed log as covered), so nil is correct, not lost
// durability.
func (db *DB) walCommit(pos wal.Pos) error {
	db.stmtMu.RLock()
	l := db.wal
	db.stmtMu.RUnlock()
	if l == nil {
		return nil
	}
	return l.Commit(pos)
}

// maybeCheckpointLocked compacts the log when it has outgrown the
// auto-checkpoint threshold; the caller holds the exclusive statement lock.
func (db *DB) maybeCheckpointLocked() {
	if db.wal == nil || db.walReplay || db.walAutoCP <= 0 {
		return
	}
	if db.wal.SizeBytes() > db.walAutoCP {
		_ = db.checkpointLocked()
	}
}

// Checkpoint compacts the write-ahead log: the full database state is
// written to a fresh segment as create/row-load records (views and
// materialized views as their defining statements) and every older segment
// is deleted, bounding both disk usage and restart replay time. The swap
// is crash-atomic — temp file, fsync, rename, directory fsync, leading
// reset marker — so a kill at any point recovers either the old history or
// the checkpoint, never a mix (see wal.Log.Checkpoint).
//
// A materialized view is checkpointed by definition, so recovery recomputes
// it from the restored base tables: an MV that was stale (unREFRESHed) at
// checkpoint time comes back fresh. Base tables and plain views round-trip
// exactly.
func (db *DB) Checkpoint() error {
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	if db.wal == nil {
		return fmt.Errorf("sqlsheet: wal not enabled")
	}
	return db.wal.Checkpoint(func(app func(kind byte, data []byte) error) error {
		for _, name := range db.cat.Names() {
			if _, isMV := db.cat.MatViewDef(name); isMV {
				continue // restored via its CREATE MATERIALIZED VIEW below
			}
			t, ok := db.cat.Get(name)
			if !ok {
				continue
			}
			if err := app(wal.KindCreate, wal.EncodeCreate(t.Name, t.Schema.Cols)); err != nil {
				return err
			}
			if len(t.Rows) > 0 {
				if err := app(wal.KindRows, wal.EncodeRows(t.Name, t.Rows)); err != nil {
					return err
				}
			}
		}
		// Plain views before materialized ones: MV definitions may read
		// views, and both may read only base tables, which are already in.
		for _, name := range db.cat.ViewNames() {
			v, ok := db.cat.ViewDef(name)
			if !ok {
				continue
			}
			stmt := &sqlast.CreateView{Name: v.Name, Query: v.Query}
			if err := app(wal.KindStmt, []byte(sqlast.FormatStatement(stmt))); err != nil {
				return err
			}
		}
		for _, name := range db.cat.MatViewNames() {
			mv, ok := db.cat.MatViewDef(name)
			if !ok {
				continue
			}
			stmt := &sqlast.CreateView{Name: mv.Name, Query: mv.Query, Materialized: true}
			if err := app(wal.KindStmt, []byte(sqlast.FormatStatement(stmt))); err != nil {
				return err
			}
		}
		return nil
	})
}
