// Benchmarks regenerating the paper's evaluation (§6): one benchmark family
// per figure/table. The cmd/experiments binary prints the same series as
// paper-style relative-units tables; these benches put each point under
// testing.B for precise measurement.
//
//	go test -bench=. -benchmem
package sqlsheet_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"sqlsheet"
	"sqlsheet/internal/experiments"
)

// benchScale keeps full -bench=. runs in seconds; use cmd/experiments
// -scale default|large for bigger datasets.
var benchScale = experiments.SmallScale

func setupBench(b *testing.B, cfg sqlsheet.Config) *sqlsheet.DB {
	b.Helper()
	db, _, err := experiments.Setup(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	// Benchmarks repeat one statement b.N times; with the serving-path cache
	// warm they would measure a cache probe, not the engine.
	// BenchmarkRepeatedQuery measures the cache itself.
	cfg.DisablePlanCache = true
	db.Configure(cfg)
	return db
}

func runQuery(b *testing.B, db *sqlsheet.DB, q string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 probes the time_dt mapping of the paper's Table 1.
func BenchmarkTable1(b *testing.B) {
	db, _, err := experiments.Setup(sqlsheet.APBScale{Years: 2, Customers: 1, Channels: 1})
	if err != nil {
		b.Fatal(err)
	}
	db.Configure(sqlsheet.Config{DisablePlanCache: true})
	runQuery(b, db, `SELECT m, m_yago, m_qago FROM time_dt WHERE m IN ('1999-01','1999-02','1999-03')`)
}

// BenchmarkFig2 measures query S5 under each predicate-pushing strategy at
// representative selectivities (paper Fig. 2).
func BenchmarkFig2(b *testing.B) {
	variants := []struct {
		name string
		cfg  sqlsheet.Config
	}{
		{"no-pushing", sqlsheet.Config{DisableSheetPush: true}},
		{"extended", sqlsheet.Config{Push: sqlsheet.PushExtended}},
		{"unfold", sqlsheet.Config{Push: sqlsheet.PushUnfold}},
		{"subquery-nl", sqlsheet.Config{Push: sqlsheet.PushRefSubquery, ForceJoin: sqlsheet.JoinNestedLoop}},
		{"subquery-hash", sqlsheet.Config{Push: sqlsheet.PushRefSubquery, ForceJoin: sqlsheet.JoinHash}},
	}
	for _, sel := range []float64{0.004, 0.012} {
		db, _, err := experiments.Setup(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		base, err := experiments.BaseProducts(db)
		if err != nil {
			b.Fatal(err)
		}
		k := int(sel*float64(len(base)) + 0.5)
		if k < 1 {
			k = 1
		}
		q := experiments.S5Query(3, base[:k])
		for _, v := range variants {
			b.Run(fmt.Sprintf("sel=%g/%s", sel, v.name), func(b *testing.B) {
				cfg := v.cfg
				cfg.DisablePlanCache = true
				db.Configure(cfg)
				runQuery(b, db, q)
			})
		}
	}
}

// BenchmarkFig3 compares the spreadsheet formulation against the ANSI
// N-self-join equivalent (paper Fig. 3; break-even ≈ 3 rules).
func BenchmarkFig3(b *testing.B) {
	db := setupBench(b, sqlsheet.Config{})
	for _, n := range []int{1, 3, 8, 14} {
		b.Run(fmt.Sprintf("rules=%d/spreadsheet", n), func(b *testing.B) {
			runQuery(b, db, experiments.S5Query(n, nil))
		})
		b.Run(fmt.Sprintf("rules=%d/self-joins", n), func(b *testing.B) {
			runQuery(b, db, experiments.S5JoinQuery(n, nil))
		})
	}
}

// BenchmarkFig4Formulas measures scaling with the number of formulas
// (paper Fig. 4: near-linear).
func BenchmarkFig4Formulas(b *testing.B) {
	db := setupBench(b, sqlsheet.Config{})
	for _, n := range []int{1, 2, 4, 8, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runQuery(b, db, experiments.S5Query(n, nil))
		})
	}
}

// BenchmarkFig4Parallel measures partition-parallel execution across PE
// counts (paper: ~80% parallel efficiency at 12 PEs).
func BenchmarkFig4Parallel(b *testing.B) {
	q := experiments.S5Query(6, nil)
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			db := setupBench(b, sqlsheet.Config{Parallel: dop, Buckets: dop * 4})
			runQuery(b, db, q)
		})
	}
}

// BenchmarkFig5Memory sweeps the access-structure budget as a percentage of
// the largest first-level partition (paper Fig. 5: flat while it fits,
// degrading toward nested-loop behaviour below ~30%).
func BenchmarkFig5Memory(b *testing.B) {
	db, _, err := experiments.Setup(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	res, err := db.Query(`SELECT c, h, t, COUNT(*) n FROM apb_cube GROUP BY c, h, t ORDER BY n DESC LIMIT 1`)
	if err != nil {
		b.Fatal(err)
	}
	largest := res.Rows[0][3].Int() * 260
	q := experiments.S5Query(1, nil)
	// SQLSHEET_SYNC_SPILL=1 reverts to synchronous eviction/reload for the
	// async-spill ablation described in EXPERIMENTS.md (Fig. 5 re-run).
	syncSpill := os.Getenv("SQLSHEET_SYNC_SPILL") != ""
	for _, pct := range []int{30, 60, 100, 120} {
		b.Run(fmt.Sprintf("pct=%d", pct), func(b *testing.B) {
			db.Configure(sqlsheet.Config{MemoryBudget: largest * int64(pct) / 100, Buckets: 8,
				SpillDir: b.TempDir(), DisableAsyncSpill: syncSpill, DisablePlanCache: true})
			runQuery(b, db, q)
		})
	}
}

// BenchmarkAblation quantifies the execution-level design choices DESIGN.md
// calls out: the single-scan aggregate maintenance and the integer-range
// probe unfolding (the paper's F1 transformation).
func BenchmarkAblation(b *testing.B) {
	// A level of aggregate-heavy point formulas over the electronics fact
	// table exercises both optimizations.
	mk := func(cfg sqlsheet.Config) *sqlsheet.DB {
		db := sqlsheet.Open()
		cfg.DisablePlanCache = true
		db.Configure(cfg)
		db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
		for _, r := range []string{"w", "e"} {
			for _, p := range []string{"dvd", "vcr", "tv"} {
				// A long history makes partition scans expensive relative
				// to the ~10-probe unfolded ranges.
				for ti := 1000; ti <= 2001; ti++ {
					if err := db.Insert("f", []any{r, p, ti, float64(ti % 97)}); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		return db
	}
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		(
		  s['dvd',2002] = sum(s)['dvd', 1990 <= t <= 2001],
		  s['vcr',2002] = avg(s)['vcr', 1990 <= t <= 2001],
		  s['tv', 2002] = sum(s)['tv', 1990 <= t <= 2001],
		  s['dvd',2003] = s['dvd',2002] + sum(s)['dvd', 1980 <= t <= 2001],
		  s['vcr',2003] = s['vcr',2002] + sum(s)['vcr', 1980 <= t <= 2001]
		)`
	cases := []struct {
		name string
		cfg  sqlsheet.Config
	}{
		{"full", sqlsheet.Config{}},
		{"no-single-scan", sqlsheet.Config{DisableSingleScan: true}},
		{"no-range-probe", sqlsheet.Config{DisableRangeProbe: true, DisableSingleScan: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			db := mk(c.cfg)
			runQuery(b, db, q)
		})
	}
}

// BenchmarkWindowVsSpreadsheet compares the two OLAP mechanisms of the
// paper's §1 on a prior-period ratio: the ANSI window-function formulation
// (LAG) against the spreadsheet formulation (cv(t)-1). Beyond-paper
// comparison; both return identical values (TestWindowEqualsSpreadsheet...).
func BenchmarkWindowVsSpreadsheet(b *testing.B) {
	db := sqlsheet.Open()
	db.Configure(sqlsheet.Config{DisablePlanCache: true})
	db.MustExec(`CREATE TABLE wf (g INT, t INT, s FLOAT)`)
	for g := 0; g < 200; g++ {
		for t := 0; t < 40; t++ {
			if err := db.Insert("wf", []any{g, t, float64((g*31+t*7)%97 + 1)}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("window-lag", func(b *testing.B) {
		runQuery(b, db, `SELECT g, t, s / lag(s) OVER (PARTITION BY g ORDER BY t) ratio FROM wf`)
	})
	b.Run("spreadsheet-cv", func(b *testing.B) {
		runQuery(b, db, `SELECT g, t, ratio FROM
			(SELECT g, t, s, ratio FROM wf
			 SPREADSHEET PBY(g) DBY (t) MEA (s, ratio) UPDATE
			 ( ratio[*] = s[cv(t)] / s[cv(t)-1] )) v`)
	})
}

// parallelBenchDB builds a synthetic star-schema pair big enough to cross
// the morsel threshold: a fact table joined to a small dimension. Sized so a
// full -bench run stays in seconds while the parallel paths dominate.
func parallelBenchDB(b *testing.B, workers int) *sqlsheet.DB {
	b.Helper()
	db := sqlsheet.Open()
	db.Configure(sqlsheet.Config{Workers: workers, DisablePlanCache: true})
	db.MustExec(`CREATE TABLE fact (k INT, g INT, v FLOAT)`)
	db.MustExec(`CREATE TABLE dim (k INT, name TEXT, w FLOAT)`)
	const nFact, nDim, nGroups = 120000, 512, 1024
	rows := make([][]any, 0, nFact)
	for i := 0; i < nFact; i++ {
		rows = append(rows, []any{i % nDim, i % nGroups, float64(i%997) * 0.5})
	}
	if err := db.Insert("fact", rows...); err != nil {
		b.Fatal(err)
	}
	rows = rows[:0]
	for i := 0; i < nDim; i++ {
		rows = append(rows, []any{i, fmt.Sprintf("d%03d", i), float64(i) * 1.25})
	}
	if err := db.Insert("dim", rows...); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkParallelJoin measures the morsel-driven hash join (partitioned
// build + parallel probe). The worker pool follows GOMAXPROCS, so
//
//	go test -bench ParallelJoin -cpu 1,2,4
//
// sweeps the operator degree of parallelism on identical work.
func BenchmarkParallelJoin(b *testing.B) {
	db := parallelBenchDB(b, runtime.GOMAXPROCS(0))
	runQuery(b, db, `SELECT d.name, f.v * d.w FROM fact f JOIN dim d ON f.k = d.k WHERE f.v > 10`)
}

// BenchmarkParallelGroupBy measures morsel-parallel partial aggregation with
// merge (SUM/COUNT/AVG are algebraic, so partials combine). Sweep with
// -cpu 1,2,4 as above.
func BenchmarkParallelGroupBy(b *testing.B) {
	db := parallelBenchDB(b, runtime.GOMAXPROCS(0))
	runQuery(b, db, `SELECT g, SUM(v), COUNT(*), AVG(v) FROM fact GROUP BY g`)
}

// BenchmarkAccessPath reproduces the paper's §7 access-method note: the
// hash-table cell index against the B-tree the authors first implemented
// and abandoned ("more expensive ... mostly due to code path length").
func BenchmarkAccessPath(b *testing.B) {
	q := experiments.S5Query(3, nil)
	for _, v := range []struct {
		name  string
		btree bool
	}{{"hash", false}, {"btree", true}} {
		b.Run(v.name, func(b *testing.B) {
			db := setupBench(b, sqlsheet.Config{UseBTreeIndex: v.btree})
			runQuery(b, db, q)
		})
	}
}

// BenchmarkAccessStructure isolates the two-level hash structure: building
// it and point-probing it through single-cell formulas.
func BenchmarkAccessStructure(b *testing.B) {
	db := setupBench(b, sqlsheet.Config{})
	b.Run("build-and-noop", func(b *testing.B) {
		// One trivial formula: cost ≈ structure build + output.
		runQuery(b, db, `SELECT c, h, t, p, s FROM apb_cube
			SPREADSHEET PBY(c, h, t) DBY(p) MEA(s) UPDATE ( s['__missing__'] = 0 )`)
	})
	b.Run("probe-heavy", func(b *testing.B) {
		runQuery(b, db, experiments.S5Query(3, nil))
	})
}

// compiledBenchDB builds an expression-benchmark fact table: enough rows
// that per-row evaluation dominates, with string, integer and float columns
// so predicates can mix arithmetic, LIKE, IN and BETWEEN.
func compiledBenchDB(b *testing.B, disable bool) *sqlsheet.DB {
	b.Helper()
	db := sqlsheet.Open()
	db.Configure(sqlsheet.Config{DisableCompiledEval: disable, DisablePlanCache: true})
	fillEF(b, db)
	return db
}

// fillEF creates and loads the shared expression-benchmark fact table.
func fillEF(b *testing.B, db *sqlsheet.DB) {
	b.Helper()
	db.MustExec(`CREATE TABLE ef (r TEXT, p TEXT, t INT, s FLOAT)`)
	regions := []string{"west", "east", "north", "south"}
	products := []string{"dvd", "vcr", "tv", "video", "dslr", "disk", "amp", "tape"}
	const n = 60000
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []any{
			regions[i%len(regions)],
			products[(i/7)%len(products)],
			1980 + i%26,
			float64(i%997) * 0.25,
		})
	}
	if err := db.Insert("ef", rows...); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCompiledFilter measures an expression-heavy WHERE clause with
// closure-compiled evaluation against the tree-walking interpreter
// (Config.DisableCompiledEval). The predicate mixes arithmetic, LIKE,
// a hashed IN-list, BETWEEN and boolean structure so per-row dispatch and
// name resolution — the costs compilation removes — dominate.
func BenchmarkCompiledFilter(b *testing.B) {
	q := `SELECT r, p, t FROM ef
		WHERE (CASE WHEN r = 'west' THEN s * 1.15 WHEN r = 'east' THEN s * 0.95 ELSE s + 3.0 END) * 2.0
		      + t % 7 > 430.0
		  AND (p LIKE 'd%' OR p IN ('vcr', 'tv', 'amp', 'tape', 'video', 'audio', 'cd', 'md', 'laser'))
		  AND t BETWEEN 1981 AND 2004
		  AND NOT (r = 'north' AND s < 5.0)`
	for _, v := range []struct {
		name    string
		disable bool
	}{{"compiled", false}, {"interpreted", true}} {
		b.Run(v.name, func(b *testing.B) {
			db := compiledBenchDB(b, v.disable)
			runQuery(b, db, q)
		})
	}
}

// coldBenchDB is the vectorization-ablation variant of compiledBenchDB:
// compiled closures stay on in both legs so the comparison isolates columnar
// kernels against the row-at-a-time closure loop, and the plan cache stays
// off so every iteration takes the cold serving path. The columnar image is
// version-cached on the catalog table, as on any served table.
func coldBenchDB(b *testing.B, disableVec bool) *sqlsheet.DB {
	b.Helper()
	db := sqlsheet.Open()
	db.Configure(sqlsheet.Config{DisableVectorizedExec: disableVec, DisablePlanCache: true})
	fillEF(b, db)
	return db
}

// BenchmarkColdScanFilter measures the cold scan-filter path: a selective
// kernel-supported predicate (BETWEEN, LIKE, IN, comparisons — no
// arithmetic) over the 60k-row fact table, vectorized selection kernels
// versus the per-row compiled closure (Config.DisableVectorizedExec).
func BenchmarkColdScanFilter(b *testing.B) {
	q := `SELECT r, p, t FROM ef
		WHERE t BETWEEN 1981 AND 2004
		  AND (p LIKE 'd%' OR p IN ('vcr', 'tv', 'amp', 'tape', 'video', 'audio', 'cd', 'md', 'laser'))
		  AND r <> 'north'
		  AND s > 60.0`
	for _, v := range []struct {
		name    string
		disable bool
	}{{"vectorized", false}, {"interpreted", true}} {
		b.Run(v.name, func(b *testing.B) {
			db := coldBenchDB(b, v.disable)
			runQuery(b, db, q)
		})
	}
}

// BenchmarkColdGroupBy measures the columnar key encoder on the group-by
// path: grouping keys are plain columns, so the vectorized leg encodes keys
// straight from the dictionary/int vectors instead of boxing per row.
func BenchmarkColdGroupBy(b *testing.B) {
	q := `SELECT r, p, SUM(s), COUNT(*) FROM ef WHERE t > 1984 GROUP BY r, p`
	for _, v := range []struct {
		name    string
		disable bool
	}{{"vectorized", false}, {"interpreted", true}} {
		b.Run(v.name, func(b *testing.B) {
			db := coldBenchDB(b, v.disable)
			runQuery(b, db, q)
		})
	}
}

// BenchmarkColdProjection measures the batch compute kernels on the project
// path: every output expression (arithmetic and string concatenation) is
// evaluated as whole output vectors per morsel in the vectorized leg, versus
// the per-row compiled closure loop.
func BenchmarkColdProjection(b *testing.B) {
	q := `SELECT s * 1.15 + t * 0.5, s - t / 4.0, s * s, r || '/' || p FROM ef WHERE t > 1984`
	for _, v := range []struct {
		name    string
		disable bool
	}{{"vectorized", false}, {"interpreted", true}} {
		b.Run(v.name, func(b *testing.B) {
			db := coldBenchDB(b, v.disable)
			runQuery(b, db, q)
		})
	}
}

// BenchmarkColdAgg measures batch aggregation with computed arguments: the
// vectorized leg runs one compute kernel per argument and bulk-feeds the
// batch accumulators by group id, versus per-row closure evaluation plus
// interface-dispatched Adds.
func BenchmarkColdAgg(b *testing.B) {
	q := `SELECT r, SUM(s * 1.1 + t), AVG(s - 100.0), COUNT(t), MIN(s), MAX(s * 2.0) FROM ef GROUP BY r`
	for _, v := range []struct {
		name    string
		disable bool
	}{{"vectorized", false}, {"interpreted", true}} {
		b.Run(v.name, func(b *testing.B) {
			db := coldBenchDB(b, v.disable)
			runQuery(b, db, q)
		})
	}
}

// BenchmarkColdJoinGroupBy measures columnar provenance carried through the
// hash join: the join output gathers both sides' image columns, so the
// post-join group-by still encodes keys from vectors and aggregates through
// batch kernels in the vectorized leg.
func BenchmarkColdJoinGroupBy(b *testing.B) {
	q := `SELECT d.cat, SUM(f.s), COUNT(*) FROM ef f JOIN pd d ON f.p = d.p WHERE f.t > 1984 GROUP BY d.cat`
	for _, v := range []struct {
		name    string
		disable bool
	}{{"vectorized", false}, {"interpreted", true}} {
		b.Run(v.name, func(b *testing.B) {
			db := coldBenchDB(b, v.disable)
			db.MustExec(`CREATE TABLE pd (p TEXT, cat TEXT)`)
			cats := map[string]string{
				"dvd": "media", "vcr": "media", "tape": "media", "disk": "media",
				"tv": "display", "video": "display", "dslr": "optics", "amp": "audio",
			}
			var rows [][]any
			for _, p := range []string{"dvd", "vcr", "tv", "video", "dslr", "disk", "amp", "tape"} {
				rows = append(rows, []any{p, cats[p]})
			}
			if err := db.Insert("pd", rows...); err != nil {
				b.Fatal(err)
			}
			runQuery(b, db, q)
		})
	}
}

// probeBenchDB builds a table whose (r, p, t) keys are unique: 4 regions x
// 32 products x 106 periods, one row per cell, so spreadsheet rules address
// individual cells.
func probeBenchDB(b *testing.B, disable bool) *sqlsheet.DB {
	b.Helper()
	db := sqlsheet.Open()
	db.Configure(sqlsheet.Config{DisableCompiledEval: disable, DisablePlanCache: true})
	db.MustExec(`CREATE TABLE es (r TEXT, p TEXT, t INT, s FLOAT)`)
	regions := []string{"west", "east", "north", "south"}
	var rows [][]any
	for ri, r := range regions {
		for pi := 0; pi < 32; pi++ {
			for t := 1900; t <= 2005; t++ {
				rows = append(rows, []any{r, fmt.Sprintf("p%02d", pi), t, float64((ri+pi*7+t)%97) + 1})
			}
		}
	}
	if err := db.Insert("es", rows...); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkCompiledSpreadsheetProbe measures a cell-reference-dense
// spreadsheet rule: each cell reads three prior periods, so the run is
// dominated by formula RHS evaluation plus hash-index cell probes — the
// paths the compiled registry and the allocation-free key encoding serve.
func BenchmarkCompiledSpreadsheetProbe(b *testing.B) {
	// ITERATE(8) re-runs the rule over the built partitions, so probe-path
	// evaluation dominates the one-time access-structure build.
	q := `SELECT r, p, t, s FROM es
		SPREADSHEET PBY(r, p) DBY(t) MEA(s) UPDATE ITERATE (8)
		( s[*] = s[cv(t)] * 0.3 + s[cv(t)-1] * 0.2 + s[cv(t)-2] * 0.15 + s[cv(t)-3] * 0.1
		       + s[cv(t)-4] * 0.1 + s[cv(t)-5] * 0.05 + s[cv(t)-6] * 0.05 + s[cv(t)-7] * 0.05 )`
	for _, v := range []struct {
		name    string
		disable bool
	}{{"compiled", false}, {"interpreted", true}} {
		b.Run(v.name, func(b *testing.B) {
			db := probeBenchDB(b, v.disable)
			runQuery(b, db, q)
		})
	}
}

// BenchmarkRepeatedQuery measures the serving path for a repeated statement —
// the dashboard pattern the plan/structure/result cache serves. The query's
// cost is dominated by the access-structure build (13,568 rows partitioned
// and indexed; two aggregate rules). Three tiers:
//
//	cold           — DisablePlanCache: parse, plan, build, evaluate each time
//	warm-plan-only — DisableResultCache: cached plan + version-checked
//	                 structure reuse; formulas still evaluate each time
//	warm           — full cache: fingerprint probe + result-version check
func BenchmarkRepeatedQuery(b *testing.B) {
	q := `SELECT r, p, t, s FROM es
		SPREADSHEET PBY(r) DBY(p, t) MEA(s) UPDATE
		( s['p00', 2006] = sum(s)['p00', 1900 <= t <= 2005],
		  s['p01', 2006] = sum(s)['p01', 1900 <= t <= 2005] )`
	variants := []struct {
		name string
		cfg  sqlsheet.Config
	}{
		{"cold", sqlsheet.Config{DisablePlanCache: true}},
		// Cold with the vectorized cold path ablated: the gap between the
		// two cold legs is what columnar scans/partition-key encoding buy
		// before any cache tier kicks in (DESIGN.md §12).
		{"cold-novec", sqlsheet.Config{DisablePlanCache: true, DisableVectorizedExec: true}},
		{"warm-plan-only", sqlsheet.Config{DisableResultCache: true}},
		{"warm", sqlsheet.Config{}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			db := probeBenchDB(b, false)
			db.Configure(v.cfg)
			// Prime so the timed loop measures the steady state (cold stays
			// cold: its cache is disabled).
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
			runQuery(b, db, q)
		})
	}
}
