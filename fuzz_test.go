package sqlsheet_test

import (
	"sync"
	"testing"

	"sqlsheet"
)

var (
	fuzzDBOnce sync.Once
	fuzzDB     *sqlsheet.DB
)

func getFuzzDB() *sqlsheet.DB {
	fuzzDBOnce.Do(func() {
		db := sqlsheet.Open()
		db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
		db.MustExec(`CREATE TABLE d (p TEXT, parent TEXT)`)
		db.MustExec(`INSERT INTO f VALUES
			('w','dvd',2000,1),('w','dvd',2001,2),('w','vcr',2000,3),
			('e','dvd',2000,4),('e','tv',2001,5)`)
		db.MustExec(`INSERT INTO d VALUES ('dvd','video'),('vcr','video')`)
		fuzzDB = db
	})
	return fuzzDB
}

// FuzzQuery drives the full pipeline — parse, plan, optimize, execute —
// with arbitrary SQL against a small fixed catalog. Errors are expected;
// panics and hangs are bugs. Mutating statements are rejected up front so
// the shared catalog stays stable.
func FuzzQuery(f *testing.F) {
	seeds := []string{
		`SELECT r, p, t, s FROM f SPREADSHEET PBY(r) DBY(p,t) MEA(s) ( s['dvd',2002] = s['dvd',2001]*2 )`,
		`SELECT * FROM (SELECT r,p,t,s FROM f SPREADSHEET PBY(r) DBY(p,t) MEA(s) UPDATE ( s[*,2001] = avg(s)[cv(p), t<2001] )) v WHERE p = 'dvd'`,
		`SELECT p, SUM(s) FROM f GROUP BY p HAVING COUNT(*) > 1 ORDER BY 2 DESC`,
		`SELECT f.p, d.parent FROM f LEFT JOIN d ON f.p = d.p WHERE s > (SELECT AVG(s) FROM f)`,
		`SELECT p, rank() OVER (PARTITION BY r ORDER BY s DESC) FROM f`,
		`WITH w AS (SELECT DISTINCT p FROM f) SELECT * FROM w UNION SELECT parent FROM d`,
		`SELECT t, s FROM f SPREADSHEET DBY(t) MEA(s) ITERATE (3) UNTIL (previous(s[2000]) - s[2000] < 1) ( s[2000] = s[2000]/2 )`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		db := getFuzzDB()
		// Queries only: Exec would mutate the shared catalog.
		res, err := db.Query(sql)
		if err != nil {
			return
		}
		_ = res.String()
	})
}

var (
	ruleFuzzOnce  sync.Once
	ruleFuzzBatch *sqlsheet.DB
	ruleFuzzRow   *sqlsheet.DB
)

// getRuleFuzzDBs returns two identically-populated databases, one pinned to
// the batch rule engine (cutoff 1) and one pinned to the per-cell
// interpreter, so a fuzzed rule set can be differentially executed.
func getRuleFuzzDBs() (*sqlsheet.DB, *sqlsheet.DB) {
	ruleFuzzOnce.Do(func() {
		mk := func(cfg sqlsheet.Config) *sqlsheet.DB {
			db := sqlsheet.Open()
			db.MustExec(`CREATE TABLE rf (r TEXT, p TEXT, t INT, s FLOAT, u FLOAT)`)
			rows := make([][]any, 0, 2*4*30)
			for _, r := range []string{"east", "west"} {
				for pi, p := range []string{"tv", "vcr", "dvd", "amp"} {
					for yr := 1980; yr < 2010; yr++ {
						rows = append(rows, []any{r, p, yr, float64(yr-1979)*1.5 + float64(pi)*7.25, 0.0})
					}
				}
			}
			if err := db.Insert("rf", rows...); err != nil {
				panic(err)
			}
			db.Configure(cfg)
			return db
		}
		ruleFuzzBatch = mk(sqlsheet.Config{Workers: 1, VecMinRows: 1, DisablePlanCache: true})
		ruleFuzzRow = mk(sqlsheet.Config{Workers: 1, DisableVectorizedRules: true, DisablePlanCache: true})
	})
	return ruleFuzzBatch, ruleFuzzRow
}

// FuzzRuleKernel differentially executes a fuzzed spreadsheet rule set on
// the batch rule engine and the per-cell interpreter. Both must agree on
// success (byte-identical rows) and on failure (identical error text) —
// the batch path may only ever fall back, never change a result.
func FuzzRuleKernel(f *testing.F) {
	seeds := []string{
		`UPDATE u[*, *] = s[cv(p), cv(t)] * 0.5 + s[cv(p), cv(t) - 1]`,
		`UPSERT u[FOR p IN ('tv','vcr'), FOR t FROM 2010 TO 2020] = s[cv(p), cv(t) - 30] * 2`,
		`UPDATE u[*, *] = s[cv(p), cv(t)] / (s[cv(p), cv(t)] - s[cv(p), cv(t)])`,
		`UPDATE u['tv', t > 2000] = min(s)['tv', 1980 <= t <= 1999] + s['tv', 2004]`,
		`UPDATE u[p IN ('tv','dvd'), 1990 <= t <= 2005] = avg(s)[cv(p), 1990 <= t <= 1999]`,
		`UPDATE u[*, *] = z[cv(p), cv(t)]`,
		`UPDATE s['tv', 2005] = s['tv', 1980] * 2`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, rules string) {
		q := `SELECT r, p, t, s, u FROM rf SPREADSHEET PBY(r) DBY (p, t) MEA (s, u) (` +
			rules + `) ORDER BY r, p, t`
		batch, row := getRuleFuzzDBs()
		resB, errB := batch.Query(q)
		resR, errR := row.Query(q)
		if (errB == nil) != (errR == nil) {
			t.Fatalf("error divergence:\n  batch: %v\n  row:   %v\n%s", errB, errR, q)
		}
		if errB != nil {
			if errB.Error() != errR.Error() {
				t.Fatalf("error text divergence:\n  batch: %v\n  row:   %v\n%s", errB, errR, q)
			}
			return
		}
		rb, rr := exactRows(resB), exactRows(resR)
		if len(rb) != len(rr) {
			t.Fatalf("row count divergence: batch=%d row=%d\n%s", len(rb), len(rr), q)
		}
		for i := range rb {
			if rb[i] != rr[i] {
				t.Fatalf("row %d divergence:\n  batch: %v\n  row:   %v\n%s", i, rb[i], rr[i], q)
			}
		}
	})
}
