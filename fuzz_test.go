package sqlsheet_test

import (
	"sync"
	"testing"

	"sqlsheet"
)

var (
	fuzzDBOnce sync.Once
	fuzzDB     *sqlsheet.DB
)

func getFuzzDB() *sqlsheet.DB {
	fuzzDBOnce.Do(func() {
		db := sqlsheet.Open()
		db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
		db.MustExec(`CREATE TABLE d (p TEXT, parent TEXT)`)
		db.MustExec(`INSERT INTO f VALUES
			('w','dvd',2000,1),('w','dvd',2001,2),('w','vcr',2000,3),
			('e','dvd',2000,4),('e','tv',2001,5)`)
		db.MustExec(`INSERT INTO d VALUES ('dvd','video'),('vcr','video')`)
		fuzzDB = db
	})
	return fuzzDB
}

// FuzzQuery drives the full pipeline — parse, plan, optimize, execute —
// with arbitrary SQL against a small fixed catalog. Errors are expected;
// panics and hangs are bugs. Mutating statements are rejected up front so
// the shared catalog stays stable.
func FuzzQuery(f *testing.F) {
	seeds := []string{
		`SELECT r, p, t, s FROM f SPREADSHEET PBY(r) DBY(p,t) MEA(s) ( s['dvd',2002] = s['dvd',2001]*2 )`,
		`SELECT * FROM (SELECT r,p,t,s FROM f SPREADSHEET PBY(r) DBY(p,t) MEA(s) UPDATE ( s[*,2001] = avg(s)[cv(p), t<2001] )) v WHERE p = 'dvd'`,
		`SELECT p, SUM(s) FROM f GROUP BY p HAVING COUNT(*) > 1 ORDER BY 2 DESC`,
		`SELECT f.p, d.parent FROM f LEFT JOIN d ON f.p = d.p WHERE s > (SELECT AVG(s) FROM f)`,
		`SELECT p, rank() OVER (PARTITION BY r ORDER BY s DESC) FROM f`,
		`WITH w AS (SELECT DISTINCT p FROM f) SELECT * FROM w UNION SELECT parent FROM d`,
		`SELECT t, s FROM f SPREADSHEET DBY(t) MEA(s) ITERATE (3) UNTIL (previous(s[2000]) - s[2000] < 1) ( s[2000] = s[2000]/2 )`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		db := getFuzzDB()
		// Queries only: Exec would mutate the shared catalog.
		res, err := db.Query(sql)
		if err != nil {
			return
		}
		_ = res.String()
	})
}
