package sqlsheet_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sqlsheet"
)

// rowsKey flattens a result into a sorted multiset signature.
func rowsKey(res *sqlsheet.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var parts []string
		for _, v := range r {
			parts = append(parts, v.String())
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func sameResults(a, b *sqlsheet.Result) bool {
	ka, kb := rowsKey(a), rowsKey(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// randomFactDB builds f(r, p, t, s) with a random sparse fill.
func randomFactDB(t *testing.T, rng *rand.Rand) *sqlsheet.DB {
	t.Helper()
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	regions := []string{"west", "east", "north"}
	products := []string{"dvd", "vcr", "tv", "video"}
	for _, r := range regions {
		for _, p := range products {
			for year := 1995; year <= 2002; year++ {
				if rng.Intn(3) == 0 {
					continue // sparse
				}
				db.MustExec(fmt.Sprintf(`INSERT INTO f VALUES ('%s','%s',%d,%d)`,
					r, p, year, rng.Intn(100)))
			}
		}
	}
	return db
}

// TestOptimizationsPreserveResults is the central optimizer-soundness
// property: for random data and random outer predicates, the fully
// optimized pipeline (prune + rewrite + push + pushdown) returns exactly
// the rows the unoptimized pipeline returns.
func TestOptimizationsPreserveResults(t *testing.T) {
	products := []string{"dvd", "vcr", "tv", "video"}
	regions := []string{"west", "east", "north"}
	f := func(seed int64, pPick, rPick uint8, yearLo uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomFactDB(t, rng)
		p1 := products[int(pPick)%len(products)]
		p2 := products[(int(pPick)+1)%len(products)]
		r1 := regions[int(rPick)%len(regions)]
		year := 1996 + int(yearLo)%6
		q := fmt.Sprintf(`SELECT * FROM
			(SELECT r, p, t, s FROM f
			 SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
			 (
			 F1: s['dvd',2001] = s['dvd', 2000]*1.2,
			 F2: s['vcr',2001] = s['vcr',1998] + s['vcr',1999],
			 F3: s['tv', 2001] = avg(s)['tv', 1995<t<2001],
			 F4: s[*, 2002]    = s[cv(p), 2001] + 1
			 )
			) v
			WHERE p IN ('%s', '%s') AND r = '%s' AND t >= %d`,
			p1, p2, r1, year)
		opt, err := db.Query(q)
		if err != nil {
			t.Logf("optimized: %v", err)
			return false
		}
		db.Configure(sqlsheet.Config{
			DisableSheetPrune: true, DisableSheetRewrite: true,
			DisableSheetPush: true, DisableFilterPushdown: true,
			DisableSingleScan: true, DisableRangeProbe: true,
		})
		raw, err := db.Query(q)
		if err != nil {
			t.Logf("raw: %v", err)
			return false
		}
		if !sameResults(opt, raw) {
			t.Logf("mismatch for %s: opt=%d raw=%d rows", q, len(opt.Rows), len(raw.Rows))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestParallelEqualsSerialProperty checks partition-parallel execution on
// random data, including upserts.
func TestParallelEqualsSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomFactDB(t, rng)
		q := `SELECT r, p, t, s FROM f
			SPREADSHEET PBY(r) DBY (p, t) MEA (s)
			(
			  UPSERT s['all', 2002] = sum(s)[p != 'all', t = 2001],
			  s[*, 2003] = s[cv(p), 2002] * 2
			)`
		serial, err := db.Query(q)
		if err != nil {
			t.Log(err)
			return false
		}
		db.Configure(sqlsheet.Config{Parallel: 3, Buckets: 7})
		par, err := db.Query(q)
		if err != nil {
			t.Log(err)
			return false
		}
		return sameResults(serial, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestSpreadsheetOracle compares point-formula evaluation against a naive
// in-test interpretation of the same formulas over the same random data.
func TestSpreadsheetOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// One partition, one dimension: values s[0..9].
		db := sqlsheet.Open()
		db.MustExec(`CREATE TABLE t1 (x INT, s FLOAT)`)
		vals := make([]float64, 10)
		for i := range vals {
			vals[i] = float64(rng.Intn(50))
			db.MustExec(fmt.Sprintf(`INSERT INTO t1 VALUES (%d, %g)`, i, vals[i]))
		}
		// Random chain of point formulas evaluated in automatic order.
		// s[a] = s[b] + s[c]; dependencies resolved by the engine.
		a, b, c := rng.Intn(5), 5+rng.Intn(5), 5+rng.Intn(5)
		d := rng.Intn(5)
		if d == a {
			d = (a + 1) % 5 // s[d] = s[a] + s[a] must not self-reference
		}
		q := fmt.Sprintf(`SELECT x, s FROM t1
			SPREADSHEET DBY (x) MEA (s) UPDATE
			( s[%d] = s[%d] + s[%d],
			  s[%d] = s[%d] * 2 )`, d, a, a, a, b)
		// Naive oracle: automatic order evaluates s[a]=s[b]*2 first
		// (the first formula depends on it), then s[d]=s[a]+s[a].
		want := make([]float64, 10)
		copy(want, vals)
		want[a] = want[b] * 2
		want[d] = want[a] + want[a]
		_ = c
		res, err := db.Query(q)
		if err != nil {
			t.Log(err)
			return false
		}
		got := make([]float64, 10)
		for _, r := range res.Rows {
			got[r[0].Int()] = r[1].Float()
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("seed %d: s[%d] = %g, want %g (a=%d b=%d d=%d)", seed, i, got[i], want[i], a, b, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMemoryBudgetPreservesResults: spilling must never change answers.
func TestMemoryBudgetPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := randomFactDB(t, rng)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		( s[*, 2002] = avg(s)[cv(p), 1995 <= t <= 2001] )`
	unbounded, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{500, 2000, 100000} {
		db.Configure(sqlsheet.Config{MemoryBudget: budget, SpillDir: t.TempDir(), Buckets: 5})
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !sameResults(unbounded, res) {
			t.Fatalf("budget %d changed results", budget)
		}
	}
}

// TestSequentialVsAutomaticAgreeWhenOrdered: when formulas are listed in
// dependency order, SEQUENTIAL ORDER and AUTOMATIC ORDER agree.
func TestSequentialVsAutomaticAgreeWhenOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomFactDB(t, rng)
		rules := `( s['dvd', 2001] = s['dvd', 2000] + 1,
			    s['dvd', 2002] = s['dvd', 2001] * 2,
			    s['dvd', 2003] = s['dvd', 2002] - 3 )`
		qa := `SELECT r, p, t, s FROM f SPREADSHEET PBY(r) DBY(p, t) MEA(s) ` + rules
		qs := `SELECT r, p, t, s FROM f SPREADSHEET PBY(r) DBY(p, t) MEA(s) SEQUENTIAL ORDER ` + rules
		ra, err := db.Query(qa)
		if err != nil {
			t.Log(err)
			return false
		}
		rs, err := db.Query(qs)
		if err != nil {
			t.Log(err)
			return false
		}
		return sameResults(ra, rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// identicalResults requires exact row order, column order, value kinds and
// rendered values — byte-identical results, not just the same multiset.
func identicalResults(a, b *sqlsheet.Result) bool {
	if len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			va, vb := a.Rows[i][j], b.Rows[i][j]
			if va.K != vb.K || va.String() != vb.String() {
				return false
			}
		}
	}
	return true
}

// TestCompiledEvalPreservesResults is the compiled-evaluation equivalence
// property at the database level: for random data, every query — filters,
// joins, group-bys, windows, LIKE/IN predicates, DML and spreadsheet
// formulas — returns byte-identical results with compilation on (default)
// and off (DisableCompiledEval, the ablation knob).
func TestCompiledEvalPreservesResults(t *testing.T) {
	queries := []string{
		`SELECT r, p, t, s FROM f WHERE s * 2 + 1 > 50 AND p LIKE 'd%' OR t IN (1996, 1999, 2001)`,
		`SELECT upper(r) || '-' || p, s / 2.0 FROM f WHERE NOT (t BETWEEN 1997 AND 1999)`,
		`SELECT a.r, a.p, a.s + b.s FROM f a JOIN f b ON a.r = b.r AND a.p = b.p AND a.t = b.t - 1`,
		`SELECT r, p, sum(s), count(*), avg(s + 1) FROM f WHERE t >= 1996 GROUP BY r, p ORDER BY r, p`,
		`SELECT r, p, t, s, row_number() OVER (PARTITION BY r ORDER BY s DESC, p, t) FROM f ORDER BY r, p, t`,
		`SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY(p, t) MEA(s) UPDATE
		 ( s['dvd', 2001] = s['dvd', 2000] * 1.2 + avg(s)['tv', 1995 < t < 2001],
		   s[*, 2002] = s[cv(p), 2001] + 1 )`,
		`SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		 ( UPSERT s['all', 2003] = sum(s)[p != 'all', t = 2001] )`,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dbOn := randomFactDB(t, rng)
		rng = rand.New(rand.NewSource(seed))
		dbOff := randomFactDB(t, rng)
		dbOff.Configure(sqlsheet.Config{DisableCompiledEval: true})
		// DML must behave identically too: apply the same update to both.
		upd := `UPDATE f SET s = s * 1.5 + 1 WHERE p LIKE 'v%' AND t % 2 = 0`
		dbOn.MustExec(upd)
		dbOff.MustExec(upd)
		for _, q := range queries {
			on, err := dbOn.Query(q)
			if err != nil {
				t.Logf("seed %d compiled: %s: %v", seed, q, err)
				return false
			}
			off, err := dbOff.Query(q)
			if err != nil {
				t.Logf("seed %d interpreted: %s: %v", seed, q, err)
				return false
			}
			if !identicalResults(on, off) {
				t.Logf("seed %d: results differ for %s\ncompiled:\n%s\ninterpreted:\n%s",
					seed, q, on, off)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
