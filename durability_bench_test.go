package sqlsheet_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sqlsheet"
)

// BenchmarkWALAppend measures single-statement DML throughput under each
// durability mode: none (no fsync anywhere), group (ack after a coalesced
// post-apply fsync), always (fsync before apply). The spread between none
// and always is the price of per-statement durability; group sits between
// because the sync happens outside the statement lock.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []sqlsheet.SyncMode{sqlsheet.SyncNone, sqlsheet.SyncGroup, sqlsheet.SyncAlways} {
		b.Run(fmt.Sprintf("fsync=%s", mode), func(b *testing.B) {
			db := sqlsheet.Open()
			if err := db.EnableWAL(b.TempDir(), mode); err != nil {
				b.Fatal(err)
			}
			db.MustExec(`CREATE TABLE t (k INT, v INT)`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i*3))
			}
			b.StopTimer()
			db.Close()
		})
	}
	// No-WAL baseline for the same statement shape.
	b.Run("fsync=disabled", func(b *testing.B) {
		db := sqlsheet.Open()
		db.MustExec(`CREATE TABLE t (k INT, v INT)`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i*3))
		}
	})
}

// BenchmarkWALAppendConcurrent is the group-commit case: 8 goroutines
// issuing single-row DML. Under always each statement pays its own fsync
// inside the statement lock; under group the first committer through syncs
// for everyone piled up behind it (see Counters.CoalescedSyncs), so
// throughput approaches one fsync per batch instead of one per statement.
func BenchmarkWALAppendConcurrent(b *testing.B) {
	for _, mode := range []sqlsheet.SyncMode{sqlsheet.SyncGroup, sqlsheet.SyncAlways} {
		b.Run(fmt.Sprintf("fsync=%s", mode), func(b *testing.B) {
			db := sqlsheet.Open()
			if err := db.EnableWAL(b.TempDir(), mode); err != nil {
				b.Fatal(err)
			}
			db.MustExec(`CREATE TABLE t (k INT, v INT)`)
			var seq atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i*3))
				}
			})
			b.StopTimer()
			if c, ok := db.WALCounters(); ok {
				b.ReportMetric(float64(c.CoalescedSyncs)/float64(b.N), "coalesced/op")
			}
			db.Close()
		})
	}
}

// BenchmarkReaderDuringDML measures SELECT latency while one writer
// goroutine hammers single-row DML the whole time. snapshot=on is the MVCC
// path (readers pin per-statement images, no lock); snapshot=off restores
// the RWMutex regime where every reader queues behind the writer's
// exclusive sections — the ablation shows what lock-free reads buy under
// write pressure.
func BenchmarkReaderDuringDML(b *testing.B) {
	for _, noSnap := range []bool{false, true} {
		name := "snapshot=on"
		if noSnap {
			name = "snapshot=off"
		}
		b.Run(name, func(b *testing.B) {
			db := sqlsheet.Open()
			cfg := db.Options()
			cfg.DisableSnapshotIsolation = noSnap
			cfg.DisableResultCache = true // force every read onto the scan path
			db.Configure(cfg)
			db.MustExec(`CREATE TABLE f (k INT, v INT)`)
			for i := 0; i < 5000; i++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO f VALUES (%d, %d)`, i, i))
			}

			var stop atomic.Bool
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				for i := 0; !stop.Load(); i++ {
					db.MustExec(fmt.Sprintf(`UPDATE f SET v = v + 1 WHERE k = %d`, i%5000))
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(`SELECT COUNT(*), SUM(k) FROM f`); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stop.Store(true)
			<-writerDone
		})
	}
}
