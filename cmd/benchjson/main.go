// benchjson converts `go test -bench` output into the repo's BENCH_*.json
// record format and diffs new runs against a checked-in baseline.
//
// Usage:
//
//	go test -run '^$' -bench ... -cpu 1,4 -benchmem ./... |
//	    go run ./cmd/benchjson -out BENCH_storage.json -command "make bench-compare"
//
// With -diff FILE the parsed results are compared against FILE before any
// writing: matching benchmarks print their ns/op ratio so a regression is
// visible in CI output without spelunking raw bench logs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	NsOp   int64  `json:"ns_per_op"`
	BOp    int64  `json:"bytes_per_op,omitempty"`
	Allocs int64  `json:"allocs_per_op,omitempty"`
}

type record struct {
	Recorded string `json:"recorded"`
	Command  string `json:"command"`
	Host     struct {
		Goos   string `json:"goos"`
		Goarch string `json:"goarch"`
		CPU    string `json:"cpu"`
		Cores  int    `json:"cores"`
		Note   string `json:"note,omitempty"`
	} `json:"host"`
	Results []result `json:"results"`
}

// benchLine matches one `go test -bench` result row, e.g.
// BenchmarkExternalSort/spill-async-4  3  42514321 ns/op  14755680 B/op  94506 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "write the parsed record to this JSON file")
	diff := flag.String("diff", "", "compare parsed results against this baseline JSON file")
	command := flag.String("command", "", "command string recorded in the JSON")
	note := flag.String("note", "", "host note recorded in the JSON")
	failOver := flag.Float64("fail-over", 0, "exit nonzero when any benchmark regresses more than this percentage vs the -diff baseline (0 disables)")
	merge := flag.Bool("merge", false, "carry -diff baseline results absent from this run into the written record, so several benchmark suites can share one baseline file")
	flag.Parse()

	rec := record{Recorded: time.Now().UTC().Format("2006-01-02"), Command: *command}
	rec.Host.Goos = runtime.GOOS
	rec.Host.Goarch = runtime.GOARCH
	rec.Host.Cores = runtime.NumCPU()
	rec.Host.Note = *note
	if rec.Host.Cores == 1 {
		caveat := "single-core container: -cpu N raises GOMAXPROCS but adds no execution resources, " +
			"so -cpu 4 wall-clock speedup is physically impossible here and timings differ only by " +
			"scheduling overhead (see EXPERIMENTS.md, 'Parallel efficiency caveat'). Async-vs-sync " +
			"spill gains from write coalescing survive on one core; re-record on a multi-core host " +
			"to measure the >=1.5x -cpu 4 speedup the build and sort pools target."
		if rec.Host.Note != "" {
			caveat = rec.Host.Note + " | " + caveat
		}
		rec.Host.Note = caveat
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw bench output through
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.Host.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := result{Name: m[1], CPU: 1}
		if m[2] != "" {
			r.CPU, _ = strconv.Atoi(m[2])
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		r.NsOp = int64(ns)
		if m[4] != "" {
			r.BOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.Allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rec.Results = append(rec.Results, r)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Results) == 0 {
		fatal(fmt.Errorf("no benchmark results on stdin"))
	}

	var regressions []string
	var base *record
	if *diff != "" {
		var err error
		base, regressions, err = diffBaseline(*diff, rec.Results, *failOver, *merge)
		if err != nil {
			fatal(err)
		}
	}
	// Regression gating happens before the baseline rewrite: a failing run
	// must not replace the baseline it just regressed against.
	if *failOver > 0 && len(regressions) > 0 {
		fatal(fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs baseline:\n  %s",
			len(regressions), *failOver, strings.Join(regressions, "\n  ")))
	}
	if *merge && base != nil {
		// Baseline entries this run did not re-measure come first, in their
		// baseline order, so suites sharing the file interleave stably.
		cur := make(map[string]bool, len(rec.Results))
		for _, r := range rec.Results {
			cur[resultKey(r)] = true
		}
		var kept []result
		for _, r := range base.Results {
			if !cur[resultKey(r)] {
				kept = append(kept, r)
			}
		}
		rec.Results = append(kept, rec.Results...)
	}
	if *out != "" {
		data, err := json.MarshalIndent(&rec, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rec.Results), *out)
	}
}

// diffBaseline prints the new/old ns_per_op ratio for every benchmark present
// in both runs. A missing or unreadable baseline is not an error — the first
// recording has nothing to diff against. Benchmark sets are allowed to drift
// between recordings: results without a baseline entry are reported as (new)
// and baseline entries absent from this run as (gone), so adding or retiring
// a benchmark never breaks the comparison, but silent set changes are still
// visible in the diff output.
//
// failOver > 0 additionally collects every common benchmark whose ns/op grew
// by more than that percentage; the returned list drives -fail-over's
// nonzero exit. New and gone benchmarks never count as regressions.
func diffBaseline(path string, cur []result, failOver float64, merge bool) (*record, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: no baseline at %s (skipping diff)\n", path)
		return nil, nil, nil
	}
	var base record
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, nil, fmt.Errorf("parse baseline %s: %v", path, err)
	}
	old := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		old[resultKey(r)] = r
	}
	fmt.Fprintf(os.Stderr, "benchjson: diff vs %s (recorded %s)\n", path, base.Recorded)
	var regressions []string
	seen := make(map[string]bool, len(cur))
	for _, r := range cur {
		seen[resultKey(r)] = true
		b, ok := old[resultKey(r)]
		if !ok {
			fmt.Fprintf(os.Stderr, "  %-50s -cpu %d  %12s -> %12d ns/op  (new)\n",
				r.Name, r.CPU, "-", r.NsOp)
			continue
		}
		if b.NsOp == 0 {
			continue
		}
		ratio := float64(r.NsOp) / float64(b.NsOp)
		tag := ""
		if ratio > 1.10 {
			tag = "  << slower"
		} else if ratio < 0.90 {
			tag = "  >> faster"
		}
		fmt.Fprintf(os.Stderr, "  %-50s -cpu %d  %12d -> %12d ns/op  (%.2fx)%s\n",
			r.Name, r.CPU, b.NsOp, r.NsOp, ratio, tag)
		if failOver > 0 && ratio > 1+failOver/100 {
			regressions = append(regressions,
				fmt.Sprintf("%s -cpu %d: %d -> %d ns/op (%.2fx)", r.Name, r.CPU, b.NsOp, r.NsOp, ratio))
		}
	}
	absent := "gone"
	if merge {
		absent = "kept"
	}
	for _, r := range base.Results {
		if !seen[resultKey(r)] {
			fmt.Fprintf(os.Stderr, "  %-50s -cpu %d  %12d -> %12s ns/op  (%s)\n",
				r.Name, r.CPU, r.NsOp, "-", absent)
		}
	}
	return &base, regressions, nil
}

// resultKey identifies one benchmark across runs: name plus -cpu count.
func resultKey(r result) string { return fmt.Sprintf("%s@%d", r.Name, r.CPU) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
