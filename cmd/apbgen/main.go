// Command apbgen generates the APB-1-style benchmark dataset as CSV files
// (apb_fact.csv, apb_cube.csv, product_dt.csv, time_dt.csv) for use outside
// the embedded engine.
//
// Usage:
//
//	apbgen [-out DIR] [-seed N] [-channels N] [-customers N] [-years N] [-density F]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sqlsheet/internal/apb"
	"sqlsheet/internal/catalog"
)

func main() {
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "generator seed")
	channels := flag.Int("channels", 0, "base channel members")
	customers := flag.Int("customers", 0, "base customer members")
	years := flag.Int("years", 0, "years of months")
	density := flag.Float64("density", 0, "fact table density (paper: 0.1)")
	flag.Parse()

	d := apb.Generate(apb.Config{
		Seed:      *seed,
		Channels:  *channels,
		Customers: *customers,
		Years:     *years,
		Density:   *density,
	})
	cat := catalog.New()
	if err := d.Install(cat); err != nil {
		fatal(err)
	}
	for _, name := range cat.Names() {
		t, _ := cat.Get(name)
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d rows\n", path, len(t.Rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apbgen:", err)
	os.Exit(1)
}
