// Command experiments regenerates the paper's evaluation (§6): Table 1 and
// Figures 2–5, printing each as a relative-units table the way the paper
// reports its results.
//
// Usage:
//
//	experiments [-exp all|table1|fig2|fig3|fig4|fig5] [-scale small|default|large]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"sqlsheet"
	"sqlsheet/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: all, table1, fig2, fig3, fig4, fig5")
	scaleFlag := flag.String("scale", "default", "dataset scale: small, default, large")
	workersFlag := flag.Int("workers", 0, "operator worker-pool size applied to every run (0 = serial operators; fig4 sweeps its own)")
	flag.Parse()
	experiments.Workers = *workersFlag

	var scale sqlsheet.APBScale
	switch *scaleFlag {
	case "small":
		scale = experiments.SmallScale
	case "default":
		scale = experiments.DefaultScale
	case "large":
		scale = sqlsheet.APBScale{
			Seed: 1, ProductFanout: []int{2, 3, 3, 3, 4, 4},
			Channels: 3, Customers: 6, Years: 2, Density: 0.1,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	run := func(name string, fn func() error) {
		if *expFlag != "all" && *expFlag != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	db, info, err := experiments.Setup(scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	_ = db
	fmt.Printf("APB dataset: %d fact rows, %d cube rows, %d products, %d months\n\n",
		info.FactRows, info.CubeRows, info.Products, info.Months)

	run("table1", func() error {
		rows, err := experiments.Table1(scale)
		if err != nil {
			return err
		}
		fmt.Println("Table 1: mapping between m and m_yago/m_qago")
		fmt.Println("============================================")
		fmt.Printf("%-10s %-10s %-10s\n", "m", "m_yago", "m_qago")
		for _, r := range rows {
			fmt.Printf("%-10s %-10s %-10s\n", r[0], r[1], r[2])
		}
		fmt.Println()
		return nil
	})

	run("fig2", func() error {
		sels := []float64{0.002, 0.004, 0.006, 0.008, 0.010, 0.012}
		series, err := experiments.Fig2(scale, sels)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSeries(
			"Figure 2: pushing predicates (relative units of time)", "selectivity", series))
		return nil
	})

	run("fig3", func() error {
		series, err := experiments.Fig3(scale, []int{1, 2, 3, 4, 6, 8, 10, 12, 14})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSeries(
			"Figure 3: hash join vs. SQL spreadsheet (relative units of time)", "# rules", series))
		return nil
	})

	run("fig4", func() error {
		dops := []int{1, 2, 4}
		if n := runtime.NumCPU(); n >= 8 {
			dops = append(dops, 8)
		}
		series, err := experiments.Fig4(scale, []int{1, 2, 4, 6, 8, 10, 12}, dops)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSeries(
			"Figure 4a: scalability with number of formulas (serial)", "# formulas", series[:1]))
		fmt.Println(experiments.FormatSeries(
			"Figure 4b: parallel execution (time at max formulas)", "# PEs", series[1:2]))
		fmt.Println(experiments.FormatSeries(
			"Figure 4c: morsel-parallel self-joins (time at max formulas)", "# workers", series[2:]))
		return nil
	})

	run("fig5", func() error {
		pcts := []int{20, 40, 60, 80, 100, 120}
		// Fig. 5 needs partitions much larger than a block; use the
		// dedicated scale regardless of -scale (see experiments.Fig5Scale).
		s, loads, err := experiments.Fig5(experiments.Fig5Scale, pcts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSeries(
			"Figure 5: scalability with size of physical memory", "% of largest partition",
			[]experiments.Series{s}))
		fmt.Printf("%-24s", "block loads:")
		for _, l := range loads {
			fmt.Printf("%10d", l)
		}
		fmt.Println()
		fmt.Println()
		return nil
	})
}
