// Command sqlsheet is an interactive shell (and script runner) for the
// spreadsheet-SQL engine.
//
// Usage:
//
//	sqlsheet                 # interactive REPL
//	sqlsheet -f script.sql   # run a ';'-separated script
//	sqlsheet -apb            # preload the APB benchmark dataset
//
// Meta commands inside the REPL:
//
//	\d               list tables
//	\explain <sql>   show the optimized plan
//	\analyze <sql>   run the query and show the plan + operator stats
//	\load <table> <file.csv>
//	\q               quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sqlsheet"
)

func main() {
	file := flag.String("f", "", "run the given SQL script and exit")
	apb := flag.Bool("apb", false, "preload the APB benchmark dataset")
	parallel := flag.Int("parallel", 0, "spreadsheet degree of parallelism")
	workers := flag.Int("workers", 1, "operator worker-pool size (0 = all cores, 1 = serial)")
	flag.Parse()

	db := sqlsheet.Open()
	if *parallel > 0 || *workers != 1 {
		cfg := db.Options()
		cfg.Parallel = *parallel
		cfg.Workers = *workers
		db.Configure(cfg)
	}
	if *apb {
		info, err := db.InstallAPB(sqlsheet.APBScale{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded APB dataset: %d cube rows, %d fact rows\n", info.CubeRows, info.FactRows)
	}

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		res, err := db.Exec(string(data))
		if err != nil {
			fatal(err)
		}
		if res != nil {
			fmt.Print(res)
		}
		return
	}

	fmt.Println("sqlsheet — Spreadsheets in RDBMS for OLAP (SIGMOD 2003). \\q to quit.")
	repl(db)
}

func repl(db *sqlsheet.DB) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sql> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "  -> "
			continue
		}
		prompt = "sql> "
		sql := buf.String()
		buf.Reset()
		res, err := db.Exec(sql)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if res != nil {
			fmt.Print(res)
		}
	}
}

// meta handles backslash commands; returns false to quit.
func meta(db *sqlsheet.DB, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\d":
		for _, t := range db.Tables() {
			fmt.Printf("%s (%d rows)\n", t, db.TableRows(t))
		}
		for _, v := range db.Views() {
			fmt.Printf("%s (view)\n", v)
		}
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		sql = strings.TrimSuffix(sql, ";")
		out, err := db.Explain(sql)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(out)
	case "\\analyze":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\analyze"))
		sql = strings.TrimSuffix(sql, ";")
		out, err := db.ExplainAnalyze(sql)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(out)
	case "\\load":
		if len(fields) != 3 {
			fmt.Println("usage: \\load <table> <file.csv>")
			return true
		}
		f, err := os.Open(fields[2])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		defer f.Close()
		n, err := db.LoadCSV(fields[1], f, true)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("loaded %d rows\n", n)
	default:
		fmt.Println("unknown command; try \\d, \\explain, \\load, \\q")
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlsheet:", err)
	os.Exit(1)
}
