// Command sqlsheet is an interactive shell (and script runner) for the
// spreadsheet-SQL engine.
//
// Usage:
//
//	sqlsheet                 # interactive REPL
//	sqlsheet -f script.sql   # run a ';'-separated script
//	sqlsheet -apb            # preload the APB benchmark dataset
//	sqlsheet -connect host:port   # REPL against a running sqlsheetd
//
// Meta commands inside the REPL:
//
//	\d               list tables
//	\explain <sql>   show the optimized plan
//	\analyze <sql>   run the query and show the plan + operator stats
//	\load <table> <file.csv>
//	\q               quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sqlsheet"
	"sqlsheet/internal/client"
	"sqlsheet/internal/wire"
)

func main() {
	file := flag.String("f", "", "run the given SQL script and exit")
	apb := flag.Bool("apb", false, "preload the APB benchmark dataset")
	parallel := flag.Int("parallel", 0, "spreadsheet degree of parallelism")
	workers := flag.Int("workers", 1, "operator worker-pool size (0 = all cores, 1 = serial)")
	connect := flag.String("connect", "", "connect to a sqlsheetd server instead of running embedded")
	flag.Parse()

	if *connect != "" {
		remote(*connect, *file)
		return
	}

	db := sqlsheet.Open()
	if *parallel > 0 || *workers != 1 {
		cfg := db.Options()
		cfg.Parallel = *parallel
		cfg.Workers = *workers
		db.Configure(cfg)
	}
	if *apb {
		info, err := db.InstallAPB(sqlsheet.APBScale{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded APB dataset: %d cube rows, %d fact rows\n", info.CubeRows, info.FactRows)
	}

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		res, err := db.Exec(string(data))
		if err != nil {
			fatal(err)
		}
		if res != nil {
			fmt.Print(res)
		}
		return
	}

	fmt.Println("sqlsheet — Spreadsheets in RDBMS for OLAP (SIGMOD 2003). \\q to quit.")
	repl(db)
}

func repl(db *sqlsheet.DB) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sql> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "  -> "
			continue
		}
		prompt = "sql> "
		sql := buf.String()
		buf.Reset()
		res, err := db.Exec(sql)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if res != nil {
			fmt.Print(res)
		}
	}
}

// meta handles backslash commands; returns false to quit.
func meta(db *sqlsheet.DB, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\d":
		for _, t := range db.Tables() {
			fmt.Printf("%s (%d rows)\n", t, db.TableRows(t))
		}
		for _, v := range db.Views() {
			fmt.Printf("%s (view)\n", v)
		}
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		sql = strings.TrimSuffix(sql, ";")
		out, err := db.Explain(sql)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(out)
	case "\\analyze":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\analyze"))
		sql = strings.TrimSuffix(sql, ";")
		out, err := db.ExplainAnalyze(sql)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(out)
	case "\\load":
		if len(fields) != 3 {
			fmt.Println("usage: \\load <table> <file.csv>")
			return true
		}
		f, err := os.Open(fields[2])
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		defer f.Close()
		n, err := db.LoadCSV(fields[1], f, true)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Printf("loaded %d rows\n", n)
	default:
		fmt.Println("unknown command; try \\d, \\explain, \\load, \\q")
	}
	return true
}

// remote runs the REPL (or a script) against a sqlsheetd server.
func remote(addr, file string) {
	c, err := client.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			fatal(err)
		}
		res, err := c.Query(string(data))
		if err != nil {
			fatal(err)
		}
		fmt.Print(formatWire(res))
		return
	}

	fmt.Printf("sqlsheet — connected to %s. \\q to quit.\n", addr)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sql> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "\\q" || trimmed == "\\quit") {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "  -> "
			continue
		}
		prompt = "sql> "
		sql := buf.String()
		buf.Reset()
		res, err := c.Query(sql)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(formatWire(res))
	}
}

// formatWire renders a wire result as an aligned table, mirroring the
// embedded Result printer.
func formatWire(res *wire.Result) string {
	if res == nil {
		return ""
	}
	if len(res.Cols) == 0 {
		return "(no rows)\n"
	}
	width := make([]int, len(res.Cols))
	for i, c := range res.Cols {
		width[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(res.Cols))
		for i := range res.Cols {
			s := "NULL"
			if i < len(row) {
				s = row[i].String()
			}
			cells[r][i] = s
			if len(s) > width[i] {
				width[i] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range res.Cols {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", width[i], c)
	}
	b.WriteByte('\n')
	for r := range cells {
		for i, s := range cells[r] {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(res.Rows))
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlsheet:", err)
	os.Exit(1)
}
