// Command sqlsheetd serves the spreadsheet-SQL engine over TCP using the
// framed wire protocol, with bounded admission, per-query timeouts, and an
// HTTP metrics endpoint.
//
// Usage:
//
//	sqlsheetd -addr :7433 -metrics-addr :7434
//	sqlsheetd -f init.sql -apb -query-timeout 30s
//
// SIGINT/SIGTERM triggers a graceful drain: the listener closes, in-flight
// queries finish (up to -drain-timeout), stragglers are cancelled through
// the engine's cancellation points.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sqlsheet"
	"sqlsheet/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "query protocol listen address")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:7434", "HTTP /metrics + /healthz address (empty disables)")
	file := flag.String("f", "", "run the given SQL script before serving (schema/data setup)")
	apb := flag.Bool("apb", false, "preload the APB benchmark dataset")
	parallel := flag.Int("parallel", 0, "spreadsheet degree of parallelism")
	workers := flag.Int("workers", 1, "operator worker-pool size (0 = all cores, 1 = serial)")
	maxInFlight := flag.Int("max-inflight", 8, "max concurrently executing queries")
	maxQueue := flag.Int("max-queue", 16, "max queries waiting for admission")
	queueWait := flag.Duration("queue-wait", time.Second, "max admission wait before SERVER_BUSY")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain window on shutdown")
	flag.Parse()

	db := sqlsheet.Open()
	if *parallel > 0 || *workers != 1 {
		cfg := db.Options()
		cfg.Parallel = *parallel
		cfg.Workers = *workers
		db.Configure(cfg)
	}
	if *apb {
		info, err := db.InstallAPB(sqlsheet.APBScale{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded APB dataset: %d cube rows, %d fact rows\n", info.CubeRows, info.FactRows)
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		if _, err := db.Exec(string(data)); err != nil {
			fatal(err)
		}
	}

	srv := server.New(db, server.Config{
		Addr:         *addr,
		MetricsAddr:  *metricsAddr,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueueWait:    *queueWait,
		QueryTimeout: *queryTimeout,
	})
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("sqlsheetd listening on %s", srv.Addr())
	if m := srv.MetricsAddr(); m != "" {
		fmt.Printf(" (metrics on http://%s/metrics)", m)
	}
	fmt.Println()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("sqlsheetd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Shutdown(ctx)
	fmt.Println("sqlsheetd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlsheetd:", err)
	os.Exit(1)
}
