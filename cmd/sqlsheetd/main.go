// Command sqlsheetd serves the spreadsheet-SQL engine over TCP using the
// framed wire protocol, with bounded admission, per-query timeouts, and an
// HTTP metrics endpoint.
//
// Usage:
//
//	sqlsheetd -addr :7433 -metrics-addr :7434
//	sqlsheetd -f init.sql -apb -query-timeout 30s
//
// Cluster mode (two processes on one host):
//
//	sqlsheetd -worker -addr :7441 -metrics-addr :7451
//	sqlsheetd -worker -addr :7442 -metrics-addr :7452
//	sqlsheetd -addr :7433 -coordinator 127.0.0.1:7441=127.0.0.1:7451,127.0.0.1:7442=127.0.0.1:7452
//
// -worker enables the SUBPLAN verb so the process can execute shipped
// partition/group shards; -coordinator installs a scatter-gather
// distributor over the comma-separated worker list (each entry is
// addr or addr=metricsAddr, the metrics address enabling /healthz
// probes before redial).
//
// SIGINT/SIGTERM triggers a graceful drain: the listener closes, in-flight
// queries finish (up to -drain-timeout), stragglers are cancelled through
// the engine's cancellation points.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sqlsheet"
	"sqlsheet/internal/server"
	"sqlsheet/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7433", "query protocol listen address")
	metricsAddr := flag.String("metrics-addr", "127.0.0.1:7434", "HTTP /metrics + /healthz address (empty disables)")
	file := flag.String("f", "", "run the given SQL script before serving (schema/data setup)")
	apb := flag.Bool("apb", false, "preload the APB benchmark dataset")
	parallel := flag.Int("parallel", 0, "spreadsheet degree of parallelism")
	workers := flag.Int("workers", 1, "operator worker-pool size (0 = all cores, 1 = serial)")
	maxInFlight := flag.Int("max-inflight", 8, "max concurrently executing queries")
	maxQueue := flag.Int("max-queue", 16, "max queries waiting for admission")
	queueWait := flag.Duration("queue-wait", time.Second, "max admission wait before SERVER_BUSY")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain window on shutdown")
	worker := flag.Bool("worker", false, "enable worker mode: accept SUBPLAN shards from a coordinator")
	coordinator := flag.String("coordinator", "", "comma-separated worker list (addr or addr=metricsAddr); installs the scatter-gather coordinator")
	shardMinRows := flag.Int("shard-min-rows", 0, "min input rows before a node is distributed (0 = coordinator default)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory; enables crash-safe durability and replays any existing log before serving")
	fsync := flag.String("fsync", "group", "WAL durability: group (coalesced post-apply fsync), always (fsync before apply), none")
	flag.Parse()

	db := sqlsheet.Open()
	if *parallel > 0 || *workers != 1 {
		cfg := db.Options()
		cfg.Parallel = *parallel
		cfg.Workers = *workers
		db.Configure(cfg)
	}
	if *walDir != "" {
		mode, err := sqlsheet.ParseSyncMode(*fsync)
		if err != nil {
			fatal(err)
		}
		if err := db.EnableWAL(*walDir, mode); err != nil {
			fatal(err)
		}
		if c, ok := db.WALCounters(); ok && c.Replayed > 0 {
			fmt.Printf("wal: recovered %d records from %s\n", c.Replayed, *walDir)
			// Setup flags already ran on the first boot and were logged;
			// re-running them against recovered state would double-load.
			if *apb || *file != "" {
				fmt.Println("wal: skipping -apb/-f setup (state recovered from log)")
				*apb, *file = false, ""
			}
		}
	}
	if *apb {
		info, err := db.InstallAPB(sqlsheet.APBScale{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded APB dataset: %d cube rows, %d fact rows\n", info.CubeRows, info.FactRows)
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		if _, err := db.Exec(string(data)); err != nil {
			fatal(err)
		}
	}

	cfg := server.Config{
		Addr:           *addr,
		MetricsAddr:    *metricsAddr,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		QueryTimeout:   *queryTimeout,
		Worker:         *worker,
		WorkerParallel: *parallel,
	}
	var coord *shard.Coordinator
	if *coordinator != "" {
		var addrs []shard.WorkerAddr
		for _, entry := range strings.Split(*coordinator, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			w := shard.WorkerAddr{Addr: entry}
			if eq := strings.IndexByte(entry, '='); eq >= 0 {
				w.Addr, w.MetricsAddr = entry[:eq], entry[eq+1:]
			}
			addrs = append(addrs, w)
		}
		if len(addrs) == 0 {
			fatal(fmt.Errorf("-coordinator: no worker addresses in %q", *coordinator))
		}
		coord = shard.New(shard.Config{Workers: addrs, MinRows: *shardMinRows})
		defer coord.Close()
		db.SetDistributor(coord)
		cfg.ShardMetrics = func() any { return coord.Snapshot() }
		fmt.Printf("sqlsheetd coordinating %d workers\n", len(addrs))
	}
	srv := server.New(db, cfg)
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("sqlsheetd listening on %s", srv.Addr())
	if m := srv.MetricsAddr(); m != "" {
		fmt.Printf(" (metrics on http://%s/metrics)", m)
	}
	fmt.Println()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("sqlsheetd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Shutdown(ctx)
	fmt.Println("sqlsheetd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlsheetd:", err)
	os.Exit(1)
}
