package sqlsheet_test

import (
	"strings"
	"testing"

	"sqlsheet"
)

func TestWindowRankingFunctions(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`
		SELECT p, t, s,
		       row_number() OVER (PARTITION BY p ORDER BY s DESC) rn,
		       rank() OVER (PARTITION BY p ORDER BY s DESC) rk
		FROM f WHERE r = 'west' AND t >= 2000
		ORDER BY p, rn`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Per product: 3 years, s strictly increasing in t → rn 1 is t=2002.
	for _, row := range res.Rows {
		if row[3].Int() == 1 && row[1].Int() != 2002 {
			t.Errorf("rn=1 should be 2002: %v", row)
		}
	}
}

func TestWindowRankTies(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE t (g TEXT, v INT)`)
	db.MustExec(`INSERT INTO t VALUES ('a',10),('a',10),('a',5),('a',1)`)
	res, err := db.Query(`
		SELECT v, rank() OVER (ORDER BY v DESC) rk,
		          dense_rank() OVER (ORDER BY v DESC) dr
		FROM t ORDER BY rk, v`)
	if err != nil {
		t.Fatal(err)
	}
	// v=10,10 → rank 1,1; v=5 → rank 3, dense 2; v=1 → rank 4, dense 3.
	if res.Rows[0][1].Int() != 1 || res.Rows[1][1].Int() != 1 {
		t.Errorf("tie ranks: %v", res.Rows)
	}
	if res.Rows[2][1].Int() != 3 || res.Rows[2][2].Int() != 2 {
		t.Errorf("post-tie: %v", res.Rows[2])
	}
	if res.Rows[3][1].Int() != 4 || res.Rows[3][2].Int() != 3 {
		t.Errorf("last: %v", res.Rows[3])
	}
}

func TestWindowLagLead(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`
		SELECT t, s,
		       lag(s) OVER (ORDER BY t) prev,
		       lead(s, 1, -1) OVER (ORDER BY t) next
		FROM f WHERE r = 'west' AND p = 'dvd' AND t >= 2000
		ORDER BY t`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][2].IsNull() {
		t.Errorf("first lag must be NULL: %v", res.Rows[0])
	}
	approx(t, res.Rows[1][2], 10, "lag")  // s(2000)=10
	approx(t, res.Rows[1][3], 12, "lead") // s(2002)=12
	approx(t, res.Rows[2][3], -1, "lead default")
}

func TestWindowCumulativeAndMoving(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE w (t INT, v FLOAT)`)
	db.MustExec(`INSERT INTO w VALUES (1,1),(2,2),(3,3),(4,4),(5,5)`)
	res, err := db.Query(`
		SELECT t,
		       sum(v) OVER (ORDER BY t) cume,
		       avg(v) OVER (ORDER BY t ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) mov,
		       sum(v) OVER () total,
		       min(v) OVER (ORDER BY t ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) lmin
		FROM w ORDER BY t`)
	if err != nil {
		t.Fatal(err)
	}
	wantCume := []float64{1, 3, 6, 10, 15}
	wantMov := []float64{1, 1.5, 2, 3, 4}
	wantMin := []float64{1, 1, 2, 3, 4}
	for i, row := range res.Rows {
		approx(t, row[1], wantCume[i], "cume")
		approx(t, row[2], wantMov[i], "moving avg")
		approx(t, row[3], 15, "total")
		approx(t, row[4], wantMin[i], "sliding min")
	}
}

func TestWindowOverGroupBy(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`
		SELECT p, SUM(s) total,
		       rank() OVER (ORDER BY SUM(s) DESC) rk
		FROM f WHERE r = 'west'
		GROUP BY p ORDER BY rk`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "tv" || res.Rows[0][2].Int() != 1 {
		t.Errorf("agg-of-agg rank: %v", res.Rows)
	}
}

// TestWindowEqualsSpreadsheetPriorPeriod ties the two OLAP mechanisms the
// paper contrasts: a prior-period ratio via LAG (the ROLAP baseline) must
// equal the spreadsheet formulation with cv(t)-1.
func TestWindowEqualsSpreadsheetPriorPeriod(t *testing.T) {
	db := newFactDB(t)
	win, err := db.Query(`
		SELECT r, p, t, s / lag(s) OVER (PARTITION BY r, p ORDER BY t) ratio
		FROM f
		ORDER BY r, p, t`)
	if err != nil {
		t.Fatal(err)
	}
	sheet, err := db.Query(`
		SELECT r, p, t, ratio FROM
		  (SELECT r, p, t, s, ratio FROM f
		   SPREADSHEET PBY(r, p) DBY (t) MEA (s, ratio) UPDATE
		   ( ratio[*] = s[cv(t)] / s[cv(t)-1] )) v
		ORDER BY r, p, t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Rows) != len(sheet.Rows) {
		t.Fatalf("row counts: %d vs %d", len(win.Rows), len(sheet.Rows))
	}
	for i := range win.Rows {
		a, b := win.Rows[i][3], sheet.Rows[i][3]
		if a.IsNull() != b.IsNull() {
			t.Fatalf("row %d: %v vs %v", i, win.Rows[i], sheet.Rows[i])
		}
		if !a.IsNull() {
			d := a.Float() - b.Float()
			if d > 1e-9 || d < -1e-9 {
				t.Fatalf("row %d: %v vs %v", i, a, b)
			}
		}
	}
}

func TestWindowErrors(t *testing.T) {
	db := newFactDB(t)
	cases := []struct{ sql, want string }{
		{`SELECT p FROM f WHERE rank() OVER (ORDER BY s) = 1`, "not allowed in WHERE"},
		{`SELECT rank() OVER (ORDER BY s) FROM f GROUP BY rank() OVER (ORDER BY s)`, "GROUP BY"},
		{`SELECT rank() OVER () FROM f`, "requires ORDER BY"},
		{`SELECT lag(s, 1) OVER (ORDER BY t ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM f`, "frame"},
		{`SELECT frobnicate() OVER () FROM f`, "not a window function"},
		{`SELECT lag() OVER (ORDER BY t) FROM f`, "requires an argument"},
		{`SELECT r, p, t, s, rank() OVER (ORDER BY s) FROM f SPREADSHEET PBY(r) DBY(p,t) MEA(s) ( s[1,2]=3 )`, "cannot share a query block"},
	}
	for _, c := range cases {
		_, err := db.Query(c.sql)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want contains %q", c.sql, err, c.want)
		}
	}
}

func TestWindowWithStar(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE t (a INT)`)
	db.MustExec(`INSERT INTO t VALUES (3),(1),(2)`)
	res, err := db.Query(`SELECT *, row_number() OVER (ORDER BY a) rn FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[1] != "rn" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][1].Int() != 1 || res.Rows[2][1].Int() != 3 {
		t.Errorf("star + window: %v", res.Rows)
	}
}
