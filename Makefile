# Developer entry points. The tier-1 gate is `make verify`; `make race`
# additionally runs the race detector over the whole module (the parallel
# operator, spreadsheet PE and block-store paths are all goroutine-heavy).

GO ?= go

.PHONY: build test verify vet race bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification: everything must build and every test must pass.
verify: build test

vet:
	$(GO) vet ./...

# Race-detector gate for the concurrent paths (operator worker pools,
# spreadsheet PEs, spill store). Slower than `make test`; run before merging
# changes that touch goroutines or shared state.
race: vet
	$(GO) test -race ./...

# Morsel-driven operator benchmarks swept across core counts; compare ns/op
# at -cpu 1 vs 4 (see BENCH_parallel.json for a recorded baseline).
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel(Join|GroupBy)' -cpu 1,2,4 -benchmem .
