# Developer entry points. The tier-1 gate is `make verify`; `make race`
# additionally runs the race detector over the whole module (the parallel
# operator, spreadsheet PE and block-store paths are all goroutine-heavy).

GO ?= go

.PHONY: build test verify vet race race-vector serve-test cluster-test recover-test bench-parallel bench bench-compare bench-cache bench-serve bench-vector bench-rules bench-shard bench-wal lint-hotpath

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification: everything must build, every test must pass (including
# the serving-layer suite), no hot-path interpreter call may sneak in
# unannotated, and the vectorized-path packages must be race-clean (the
# columnar image cache and selection-pool are shared across worker
# goroutines; race-vector is targeted so verify stays fast — full-module
# `make race` remains the pre-merge gate for goroutine-heavy changes).
verify: build test serve-test cluster-test recover-test lint-hotpath race-vector

# Serving-layer gate: wire codec round-trips, fuzz seed corpus, and the
# in-process sqlsheetd integration suite (32 concurrent sessions vs serial
# replay, timeout cancellation, admission overload, graceful drain, /metrics).
# Also part of `make race` via ./... .
serve-test:
	$(GO) test ./internal/wire/ ./internal/server/

# Cluster gate, run under the race detector (the scatter path is
# goroutine-heavy: per-worker scatter goroutines, the cancel-broadcast
# watcher, pipelined connections). Boots 2-4 in-process worker servers plus
# a coordinator and replays the byte-identity grid (shard counts 1/2/4 ×
# operator workers 1/4, pre- and post-DML), cancel-mid-scatter, worker
# restart/reconnect, and concurrent distributed sessions. Part of
# `make verify`.
cluster-test:
	$(GO) test -race ./internal/shard/
	$(GO) test -race -run 'TestCluster' ./internal/server/

# Crash-recovery gate, run under the race detector: SIGKILL a WAL-backed
# server (fsync-always) mid-INSERT-burst, restart it over the same log
# directory, and require a clean prefix covering every acknowledged
# statement, byte-identical to a serial replay. The WAL unit suite (framing,
# rotation, checkpoint truncation, torn-tail recovery, FuzzWALReplay seed
# corpus) and the root-package recovery round-trips ride along. Part of
# `make verify`.
recover-test:
	$(GO) test -race ./internal/wal/
	$(GO) test -race -run 'TestRecover' ./internal/server/
	$(GO) test -race -run 'TestWAL' .

# lint-hotpath flags direct interpreter entry points (eval.Eval / eval.EvalBool)
# in the executor and spreadsheet engine, and per-row types.Value boxing
# (Column.Value / types.New*) inside the vectorized kernel files — kernel
# loops must stay on the typed vectors. A deliberate exception needs an
# `interp-ok:` comment on the same line justifying it (one-time setup,
# compilation-off fallback, boxed-column fallback, once-per-group work, ...).
lint-hotpath:
	@bad=$$(grep -n 'eval\.\(Eval\|EvalBool\)(' internal/exec/*.go internal/core/*.go \
		| grep -v '_test\.go' | grep -v 'interp-ok:'); \
	if [ -n "$$bad" ]; then \
		echo "lint-hotpath: unannotated interpreter calls on executor/core paths:"; \
		echo "$$bad"; \
		echo "route through compiled expressions or add an 'interp-ok: <reason>' comment"; \
		exit 1; \
	fi; \
	bad=$$(grep -n '\.Value(\|types\.New[A-Z]' internal/eval/vector.go internal/eval/exprvec.go \
		internal/eval/aggbatch.go internal/exec/vector.go internal/exec/vecagg.go \
		internal/exec/vecproject.go internal/core/vecscan.go internal/core/vecrules.go \
		| grep -v 'interp-ok:'); \
	if [ -n "$$bad" ]; then \
		echo "lint-hotpath: unannotated per-row boxing in vectorized kernels:"; \
		echo "$$bad"; \
		echo "stay on the typed vectors or add an 'interp-ok: <reason>' comment"; \
		exit 1; \
	fi; \
	echo "lint-hotpath: ok"

vet:
	$(GO) vet ./...

# Race-detector gate for the concurrent paths (operator worker pools,
# spreadsheet PEs, parallel partition build, chunked external sort, async
# spill writer/prefetcher). The suite exercises every data-movement knob —
# DisableParallelBuild / DisableParallelSort / DisableAsyncSpill on and off —
# with Workers>1 (TestConcurrentDataMovement, TestDataMovementConfigsPreserveResults,
# TestStatsConcurrentWithIO). Slower than `make test`; run before merging
# changes that touch goroutines or shared state.
race: vet
	$(GO) test -race ./...

# Targeted race pass over the vectorized cold path: the columnar packages,
# the kernel compiler, the executor/core consumers, and the root ablation
# property tests (TestVectorized* runs the kernels morsel-parallel against
# the shared image cache and selection pool). Part of `make verify`.
race-vector:
	$(GO) test -race ./internal/colstore/ ./internal/blockstore/ ./internal/eval/ ./internal/exec/ ./internal/core/
	$(GO) test -race -run 'TestVectorized|TestExplainVectorized|TestParallelOperatorsEqualSerial' .

# Morsel-driven operator benchmarks swept across core counts; compare ns/op
# at -cpu 1 vs 4 (see BENCH_parallel.json for a recorded baseline).
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkParallel(Join|GroupBy)' -cpu 1,2,4 -benchmem .

# Compiled-evaluation benchmarks: expression-heavy filter and spreadsheet
# cell-probe microbenchmarks, compiled vs interpreted, swept across core
# counts (see BENCH_eval.json for a recorded baseline). The serving-path
# cache tiers ride along (cold / plan-only / warm; see BENCH_cache.json).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkCompiled(Filter|SpreadsheetProbe)|BenchmarkRepeatedQuery' -cpu 1,2,4 -benchmem .

# Serving-path cache benchmark: one repeated spreadsheet statement at each
# cache tier — cold (DisablePlanCache), warm-plan-only (DisableResultCache:
# cached plan + version-checked structure reuse) and warm (result hit).
# cmd/benchjson diffs against the checked-in BENCH_cache.json and rewrites it.
bench-cache:
	$(GO) test -run '^$$' -bench 'BenchmarkRepeatedQuery' -benchmem . | \
	$(GO) run ./cmd/benchjson -diff BENCH_cache.json -out BENCH_cache.json \
		-command "make bench-cache" \
		-note "serving-path cache tiers: cold vs plan/structure reuse vs result hit"

# Data-movement benchmarks (parallel partition build, external merge sort,
# spill-store throughput) swept across core counts. cmd/benchjson diffs the
# run against the checked-in BENCH_storage.json baseline and rewrites it; drop
# the rewrite by deleting `-out` if you only want the comparison. -fail-over
# exits nonzero (before rewriting the baseline) when any benchmark regresses
# by more than 50% — wide enough to ride out container timing noise, tight
# enough to catch a vectorized path silently falling back to the row engine.
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkParallelBuild$$|BenchmarkExternalSort|BenchmarkSpillThroughput' \
		-cpu 1,4 -benchmem ./... | \
	$(GO) run ./cmd/benchjson -diff BENCH_storage.json -out BENCH_storage.json -fail-over 50 \
		-command "make bench-compare" \
		-note "data-movement baselines: partition build, external merge sort, spill throughput"

# Vectorized cold-path benchmark: columnar selection and compute kernels,
# batch aggregation and key encoders against the row-at-a-time compiled
# closures, ablated with Config.DisableVectorizedExec (results are
# byte-identical either way — see TestVectorized* in vector_test.go).
# cmd/benchjson diffs against the checked-in BENCH_vector.json baseline and
# rewrites it.
bench-vector:
	$(GO) test -run '^$$' -bench 'BenchmarkColdScanFilter|BenchmarkColdGroupBy|BenchmarkColdProjection|BenchmarkColdAgg|BenchmarkColdJoinGroupBy' -benchmem . | \
	$(GO) run ./cmd/benchjson -diff BENCH_vector.json -out BENCH_vector.json -merge \
		-command "make bench-vector" \
		-note "cold-path vectorization: columnar kernels vs row-at-a-time closures (DisableVectorizedExec ablation)"

# Batch rule engine benchmark: spreadsheet rule application (evalFrame over
# a prebuilt 100k-cell partition set) under the vectorized kernels vs the
# per-cell interpreter, ablated with DisableVectorizedRules (byte-identical
# results either way — see TestVectorizedRulesMatchRowPath). Shares the
# BENCH_vector.json baseline with bench-vector; -fail-over guards against a
# rule silently falling off the batch path.
bench-rules:
	$(GO) test -run '^$$' -bench 'BenchmarkSpreadsheetRules' -benchmem ./internal/core/ | \
	$(GO) run ./cmd/benchjson -diff BENCH_vector.json -out BENCH_vector.json -fail-over 50 -merge \
		-command "make bench-rules" \
		-note "batch rule application: existential and FOR-loop rules, vectorized vs per-cell (DisableVectorizedRules ablation)"

# Sharded-execution benchmark: one spreadsheet statement (32 partitions,
# per-cell prefix aggregates) executed single-process vs scattered to 1 and
# 2 worker servers (serial workers, serial coordinator — the topology is
# the only variable). cmd/benchjson diffs against the checked-in
# BENCH_shard.json baseline and rewrites it; -fail-over guards against the
# distribution path silently falling back to local execution. Note the
# workers=2 vs workers=1 ratio only shows inter-process scaling on hosts
# with ≥2 CPUs; single-core hosts time-slice the workers and pin it at ~1×.
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedSpreadsheet' -benchmem ./internal/server/ | \
	$(GO) run ./cmd/benchjson -diff BENCH_shard.json -out BENCH_shard.json -fail-over 50 -merge \
		-command "make bench-shard" \
		-note "sharded spreadsheet execution: local vs 1-worker vs 2-worker scatter-gather"

# WAL durability benchmarks: single-statement DML throughput under fsync
# none/group/always plus the no-WAL baseline, the 8-way concurrent group-
# commit case (coalesced/op reports fsyncs saved per statement), and reader
# latency during a sustained write burst with snapshot isolation on vs the
# lock-based ablation (Config.DisableSnapshotIsolation). cmd/benchjson diffs
# against the checked-in BENCH_wal.json baseline and rewrites it.
bench-wal:
	$(GO) test -run '^$$' -bench 'BenchmarkWALAppend$$|BenchmarkWALAppendConcurrent|BenchmarkReaderDuringDML' -benchmem . | \
	$(GO) run ./cmd/benchjson -diff BENCH_wal.json -out BENCH_wal.json -merge \
		-command "make bench-wal" \
		-note "WAL durability: fsync mode throughput, group-commit coalescing, concurrent-reader latency under write burst (MVCC vs stmtMu ablation)"

# Serving-layer throughput: end-to-end client round-trips at 1, 8 and 64
# concurrent sessions, serving-path cache cold vs warm. cmd/benchjson diffs
# against the checked-in BENCH_serve.json baseline and rewrites it.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem ./internal/server/ | \
	$(GO) run ./cmd/benchjson -diff BENCH_serve.json -out BENCH_serve.json \
		-command "make bench-serve" \
		-note "serving layer: 1/8/64 concurrent client sessions, cold vs warm serving-path cache"
