package sqlsheet_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sqlsheet"
)

// newFactDB builds the paper's electronics warehouse f(r, p, t, s, c).
func newFactDB(t *testing.T) *sqlsheet.DB {
	t.Helper()
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT, c FLOAT)`)
	for _, r := range []string{"west", "east"} {
		for _, p := range []string{"dvd", "vcr", "tv"} {
			for ti := 1992; ti <= 2002; ti++ {
				base := float64(ti - 1990)
				if p == "vcr" {
					base *= 2
				}
				if p == "tv" {
					base *= 3
				}
				if r == "east" {
					base += 100
				}
				if err := db.Insert("f", []any{r, p, ti, base, base / 2}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return db
}

// lookup finds a result row matching the leading key values.
func lookup(t *testing.T, res *sqlsheet.Result, keys ...any) sqlsheet.Row {
	t.Helper()
	for _, row := range res.Rows {
		ok := true
		for i, k := range keys {
			if row[i].String() != fmt.Sprint(k) {
				ok = false
				break
			}
		}
		if ok {
			return row
		}
	}
	t.Fatalf("no row with keys %v in %d rows", keys, len(res.Rows))
	return nil
}

func approx(t *testing.T, got sqlsheet.Value, want float64, what string) {
	t.Helper()
	if got.IsNull() {
		t.Fatalf("%s = NULL, want %g", what, want)
	}
	if math.Abs(got.Float()-want) > 1e-9 {
		t.Fatalf("%s = %v, want %g", what, got, want)
	}
}

// --- plain SQL behaviour ---

func TestSelectWhereOrder(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`SELECT p, t, s FROM f WHERE r = 'west' AND p = 'dvd' AND t >= 2000 ORDER BY t DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Int() != 2002 || res.Rows[2][1].Int() != 2000 {
		t.Errorf("order broken: %v", res.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`SELECT p, SUM(s) total, COUNT(*) n FROM f WHERE r = 'west'
		GROUP BY p HAVING SUM(s) > 100 ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// west sums: dvd = sum(2..12)=77, vcr = 154, tv = 231.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].String() != "tv" {
		t.Errorf("ordering: %v", res.Rows)
	}
	approx(t, res.Rows[0][1], 231, "tv total")
	if res.Rows[0][2].Int() != 11 {
		t.Errorf("count = %v", res.Rows[0][2])
	}
}

func TestJoinsMatchAcrossMethods(t *testing.T) {
	db := newFactDB(t)
	db.MustExec(`CREATE TABLE dim (p TEXT, cat TEXT)`)
	db.MustExec(`INSERT INTO dim VALUES ('dvd','video'),('vcr','video'),('tv','display')`)
	q := `SELECT f.p, dim.cat, SUM(f.s) s FROM f JOIN dim ON f.p = dim.p
		WHERE f.r = 'west' GROUP BY f.p, dim.cat ORDER BY f.p`
	r1, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.ForceJoin = sqlsheet.JoinNestedLoop
	db.Configure(cfg)
	r2, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != 3 || len(r2.Rows) != 3 {
		t.Fatalf("rows: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		for j := range r1.Rows[i] {
			if r1.Rows[i][j].String() != r2.Rows[i][j].String() {
				t.Fatalf("hash vs NL mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestOuterJoins(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE a (x INT); CREATE TABLE b (y INT)`)
	db.MustExec(`INSERT INTO a VALUES (1),(2),(3); INSERT INTO b VALUES (2),(3),(4)`)
	res, err := db.Query(`SELECT x, y FROM a LEFT JOIN b ON x = y ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || !res.Rows[0][1].IsNull() {
		t.Errorf("left join: %v", res.Rows)
	}
	res, err = db.Query(`SELECT x, y FROM a RIGHT JOIN b ON x = y ORDER BY y`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || !res.Rows[2][0].IsNull() {
		t.Errorf("right join: %v", res.Rows)
	}
}

func TestSubqueries(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`SELECT COUNT(*) FROM f WHERE s > (SELECT AVG(s) FROM f)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() == 0 {
		t.Error("scalar subquery broken")
	}
	// Correlated EXISTS.
	res, err = db.Query(`SELECT DISTINCT p FROM f a WHERE EXISTS
		(SELECT 1 FROM f b WHERE b.p = a.p AND b.s > 130) ORDER BY p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "tv" {
		t.Errorf("correlated exists: %v", res.Rows)
	}
}

func TestUnionWithCTE(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`WITH w AS (SELECT DISTINCT p FROM f WHERE r = 'west')
		SELECT p FROM w UNION SELECT 'radio' p ORDER BY p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("union+cte: %v", res.Rows)
	}
}

// --- spreadsheet end-to-end (paper examples) ---

func TestPaperMotivatingExample(t *testing.T) {
	// §3: F1 slope forecast, F2 sum, F3 average of three years, F4 upsert
	// of the new 'video' member.
	db := newFactDB(t)
	res, err := db.Query(`
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		(
		F1: UPDATE s['tv',2002] =
			slope(s,t)['tv',1992<=t<=2001]*s['tv',2001] + s['tv',2001],
		F2: UPDATE s['vcr', 2002] = s['vcr', 2000] + s['vcr', 2001],
		F3: UPDATE s['dvd',2002] =
			(s['dvd',1999]+s['dvd',2000]+s['dvd',2001])/3,
		F4: UPSERT s['video', 2002] = s['tv',2002] + s['vcr',2002]
		)`)
	if err != nil {
		t.Fatal(err)
	}
	// west/tv: s linear with slope 3 over 1992..2001, s[2001]=33 → 3*33+33=132.
	approx(t, lookup(t, res, "west", "tv", 2002)[3], 132, "F1")
	// west/vcr: 20 + 22 = 42.
	approx(t, lookup(t, res, "west", "vcr", 2002)[3], 42, "F2")
	// west/dvd: (9+10+11)/3 = 10.
	approx(t, lookup(t, res, "west", "dvd", 2002)[3], 10, "F3")
	// west/video = 132 + 42.
	approx(t, lookup(t, res, "west", "video", 2002)[3], 174, "F4")
	// 2 regions × (3 products × 11 years + 1 upsert).
	if len(res.Rows) != 2*(33+1) {
		t.Errorf("row count = %d", len(res.Rows))
	}
}

func TestDensificationEquivalence(t *testing.T) {
	// §3: the spreadsheet densification must equal the ANSI outer-join
	// formulation.
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (r TEXT, p TEXT, t INT, s FLOAT)`)
	db.MustExec(`CREATE TABLE time_dt (t INT)`)
	db.MustExec(`INSERT INTO time_dt VALUES (1998),(1999),(2000),(2001)`)
	db.MustExec(`INSERT INTO f VALUES
		('west','dvd',1998,10),('west','dvd',2001,13),('east','vcr',1999,5)`)

	sheet, err := db.Query(`
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r, p) DBY (t) MEA (s, 0 as x)
		( UPSERT x[FOR t IN (SELECT t FROM time_dt)] = 0 )
		ORDER BY r, p, t`)
	if err != nil {
		t.Fatal(err)
	}
	ansi, err := db.Query(`
		SELECT v.r, v.p, v.t, f.s
		FROM f RIGHT OUTER JOIN
		     ( (SELECT DISTINCT r, p FROM f)
		        CROSS JOIN
		        (SELECT t FROM time_dt)
		      ) v
		   ON (f.r = v.r AND f.p = v.p AND f.t = v.t)
		ORDER BY v.r, v.p, v.t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sheet.Rows) != 8 || len(ansi.Rows) != 8 {
		t.Fatalf("row counts: sheet=%d ansi=%d", len(sheet.Rows), len(ansi.Rows))
	}
	for i := range sheet.Rows {
		for j := 0; j < 4; j++ {
			a, b := sheet.Rows[i][j], ansi.Rows[i][j]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && a.String() != b.String()) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestQueryS1PriorPeriods(t *testing.T) {
	// §4 query S1: year-ago / quarter-ago ratios through a reference
	// spreadsheet, including Table 1's mapping.
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE f (p TEXT, m TEXT, s FLOAT)`)
	db.MustExec(`CREATE TABLE time_dt (m TEXT, m_yago TEXT, m_qago TEXT)`)
	db.MustExec(`INSERT INTO time_dt VALUES
		('1999-01','1998-01','1998-10'),
		('1999-02','1998-02','1998-11'),
		('1999-03','1998-03','1998-12')`)
	db.MustExec(`INSERT INTO f VALUES
		('dvd','1999-01',30),('dvd','1999-01',30),
		('dvd','1998-01',20),('dvd','1998-10',40)`)

	res, err := db.Query(`
		SELECT p, m, s, r_yago, r_qago FROM
		 (SELECT p, m, s, r_yago, r_qago FROM f GROUP BY p, m
		  SPREADSHEET
		    REFERENCE prior ON (SELECT m, m_yago, m_qago FROM time_dt)
		      DBY(m) MEA(m_yago, m_qago)
		    PBY(p) DBY (m) MEA (sum(s) s, r_yago, r_qago)
		  RULES UPDATE
		  (
		  F1: r_yago[*] = s[cv(m)] / s[m_yago[cv(m)]],
		  F2: r_qago[*] = s[cv(m)] / s[m_qago[cv(m)]]
		  )
		) v
		WHERE p = 'dvd' AND m IN ('1999-01', '1999-03')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := lookup(t, res, "dvd", "1999-01")
	approx(t, row[2], 60, "sum(s)")
	approx(t, row[3], 3, "r_yago") // 60 / 20
	approx(t, row[4], 1.5, "r_qago")
}

func TestQueryS1AllPushStrategies(t *testing.T) {
	for _, push := range []sqlsheet.PushStrategy{
		sqlsheet.PushNone, sqlsheet.PushExtended, sqlsheet.PushRefSubquery, sqlsheet.PushUnfold,
	} {
		t.Run(push.String(), func(t *testing.T) {
			db := sqlsheet.Open()
			db.MustExec(`CREATE TABLE f (p TEXT, m TEXT, s FLOAT)`)
			db.MustExec(`CREATE TABLE time_dt (m TEXT, m_yago TEXT, m_qago TEXT)`)
			db.MustExec(`INSERT INTO time_dt VALUES
				('1999-01','1998-01','1998-10'),('1999-02','1998-02','1998-11'),('1999-03','1998-03','1998-12')`)
			db.MustExec(`INSERT INTO f VALUES
				('dvd','1999-01',60),('dvd','1998-01',20),('dvd','1998-10',40),
				('dvd','1999-03',90),('dvd','1998-03',30),('dvd','1998-12',45),
				('dvd','1999-02',999),('vcr','1999-01',1)`)
			cfg := db.Options()
			cfg.Push = push
			db.Configure(cfg)
			res, err := db.Query(`
				SELECT p, m, s, r_yago, r_qago FROM
				 (SELECT p, m, s, r_yago, r_qago FROM f GROUP BY p, m
				  SPREADSHEET
				    REFERENCE prior ON (SELECT m, m_yago, m_qago FROM time_dt)
				      DBY(m) MEA(m_yago, m_qago)
				    PBY(p) DBY (m) MEA (sum(s) s, r_yago, r_qago)
				  RULES UPDATE
				  (
				  F1: r_yago[*] = s[cv(m)] / s[m_yago[cv(m)]],
				  F2: r_qago[*] = s[cv(m)] / s[m_qago[cv(m)]]
				  )
				) v
				WHERE p = 'dvd' AND m IN ('1999-01', '1999-03')
				ORDER BY m`)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 2 {
				t.Fatalf("rows = %v", res.Rows)
			}
			approx(t, res.Rows[0][3], 3, "r_yago 1999-01")
			approx(t, res.Rows[0][4], 1.5, "r_qago 1999-01")
			approx(t, res.Rows[1][3], 3, "r_yago 1999-03")
			approx(t, res.Rows[1][4], 2, "r_qago 1999-03")
		})
	}
}

func TestPruningThroughView(t *testing.T) {
	db := newFactDB(t)
	explain, err := db.Explain(`
		SELECT * FROM
		(SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		 (
		 F1: s['dvd',2000]=s['dvd', 1999]*1.2,
		 F2: s['vcr',2000]=s['vcr',1998]+s['vcr',1999],
		 F3: s['tv', 2000]=avg(s)['tv', 1990<t<2000]
		 )
		) v
		WHERE p in ('dvd', 'vcr', 'video')`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "pruned formula f3") {
		t.Errorf("F3 not pruned:\n%s", explain)
	}
	// And the results agree with the unoptimized run.
	q := `SELECT * FROM
		(SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		 ( F1: s['dvd',2000]=s['dvd', 1999]*1.2,
		   F2: s['vcr',2000]=s['vcr',1998]+s['vcr',1999],
		   F3: s['tv', 2000]=avg(s)['tv', 1990<t<2000] )
		) v
		WHERE p in ('dvd', 'vcr', 'video') ORDER BY r, p, t`
	opt, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.DisableSheetPrune = true
	cfg.DisableSheetPush = true
	cfg.DisableFilterPushdown = true
	db.Configure(cfg)
	raw, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Rows) != len(raw.Rows) {
		t.Fatalf("optimized %d rows vs raw %d", len(opt.Rows), len(raw.Rows))
	}
	for i := range opt.Rows {
		for j := range opt.Rows[i] {
			if opt.Rows[i][j].String() != raw.Rows[i][j].String() {
				t.Fatalf("row %d col %d: %v vs %v", i, j, opt.Rows[i][j], raw.Rows[i][j])
			}
		}
	}
}

func TestPbyPredicatePushing(t *testing.T) {
	db := newFactDB(t)
	explain, err := db.Explain(`
		SELECT * FROM
		(SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		  ( F1: s['dvd',2000]=s['dvd',1999]+s['dvd',1997],
		    F2: s['vcr',2000]=s['vcr',1998]+s['vcr',1999] )
		) v
		WHERE r = 'east' AND t = 2000 AND p = 'dvd'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pushed PBY predicate (r = 'east')",
		"pushed independent-dimension predicate (p = 'dvd')",
		"pushed bounding-rectangle predicate t IN (2000, 1999, 1997)",
	} {
		if !strings.Contains(explain, want) {
			t.Errorf("missing %q in:\n%s", want, explain)
		}
	}
	// Pushed predicates must reach the scan.
	if !strings.Contains(explain, "Scan f") || !strings.Contains(explain, "filter=") {
		t.Errorf("predicates not pushed to scan:\n%s", explain)
	}
	res, err := db.Query(`
		SELECT * FROM
		(SELECT r, p, t, s FROM f
		 SPREADSHEET PBY(r) DBY (p, t) MEA (s) UPDATE
		  ( F1: s['dvd',2000]=s['dvd',1999]+s['dvd',1997],
		    F2: s['vcr',2000]=s['vcr',1998]+s['vcr',1999] )
		) v
		WHERE r = 'east' AND t = 2000 AND p = 'dvd'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// east dvd: 1999→109, 1997→107 ⇒ 216.
	approx(t, res.Rows[0][3], 216, "pushed result")
}

func TestSpreadsheetInsideLargerQuery(t *testing.T) {
	// The spreadsheet result is a relation: join it back to a dimension.
	db := newFactDB(t)
	db.MustExec(`CREATE TABLE names (p TEXT, full_name TEXT)`)
	db.MustExec(`INSERT INTO names VALUES ('dvd','digital video disc')`)
	res, err := db.Query(`
		SELECT v.p, n.full_name, v.s
		FROM (SELECT r, p, t, s FROM f
		      SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		      ( s['dvd', 2003] = s['dvd', 2002] * 2 )) v
		JOIN names n ON v.p = n.p
		WHERE v.t = 2003 AND v.r = 'west'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].String() != "digital video disc" {
		t.Fatalf("join over spreadsheet: %v", res.Rows)
	}
	approx(t, res.Rows[0][2], 24, "joined value")
}

func TestParallelSpreadsheetSQL(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		( s[*, 2003] = s[cv(p), 2002] * 1.5,
		  UPSERT s['video', 2003] = s['tv', 2003] + s['vcr', 2003] )
		ORDER BY r, p, t`
	serial, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.Parallel = 4
	db.Configure(cfg)
	par, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("parallel row count: %d vs %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			if serial.Rows[i][j].String() != par.Rows[i][j].String() {
				t.Fatalf("parallel mismatch row %d", i)
			}
		}
	}
}

func TestMemoryBudgetSpills(t *testing.T) {
	db := newFactDB(t)
	cfg := db.Options()
	cfg.MemoryBudget = 2048
	cfg.SpillDir = t.TempDir()
	db.Configure(cfg)
	res, stats, err := db.QueryStats(`
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY(p, t) MEA(s)
		( s[*, 2002] = s[cv(p), 2001] * 1.5 )`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlockEvictions == 0 {
		t.Error("tight budget must evict blocks")
	}
	approx(t, lookup(t, res, "west", "dvd", 2002)[3], 16.5, "spilled result")
}

func TestExplainShowsLevels(t *testing.T) {
	db := newFactDB(t)
	explain, err := db.Explain(`SELECT p, t, s FROM f SPREADSHEET DBY(p,t) MEA(s)
		( F1: s['tv', 2000] = sum(s)['tv', 1990<t<2000],
		  F2: s['vcr',2000] = sum(s)['vcr', 1995<t<2000],
		  F3: s['vcr',1999] = s['vcr',1997]+s['vcr',1998] )`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "level 1") || !strings.Contains(explain, "level 2") {
		t.Errorf("levels missing:\n%s", explain)
	}
}

func TestInsertSelectAndCSV(t *testing.T) {
	db := newFactDB(t)
	db.MustExec(`CREATE TABLE agg (p TEXT, total FLOAT)`)
	db.MustExec(`INSERT INTO agg SELECT p, SUM(s) FROM f GROUP BY p`)
	if db.TableRows("agg") != 3 {
		t.Errorf("insert-select rows = %d", db.TableRows("agg"))
	}
	db.MustExec(`CREATE TABLE csvt (a INT, b TEXT)`)
	n, err := db.LoadCSV("csvt", strings.NewReader("a,b\n1,x\n2,y\n"), true)
	if err != nil || n != 2 {
		t.Fatalf("csv: %d %v", n, err)
	}
}

func TestErrorMessages(t *testing.T) {
	db := newFactDB(t)
	cases := []struct{ sql, want string }{
		{`SELECT nope FROM f`, "unknown column"},
		{`SELECT * FROM nope`, "unknown table"},
		{`SELECT r FROM f GROUP BY p`, "unknown column"},
		{`SELECT p, t, s FROM f SPREADSHEET DBY(p, t) MEA(s) ( z[1,2] = 3 )`, "not a MEA column"},
		{`SELECT r, p, t, s FROM f SPREADSHEET PBY(r) DBY(p, t) MEA(s) UPDATE ( UPSERT s[t > 5, *] = 1 )`, "references other dimension"},
	}
	for _, c := range cases {
		_, err := db.Query(c.sql)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error = %v, want contains %q", c.sql, err, c.want)
		}
	}
}

func TestQueryS3IndependentDimRewrite(t *testing.T) {
	// S3: formulas independent of p evaluate identically whether or not p
	// is promoted into the distribution key.
	db := newFactDB(t)
	q := `SELECT p, t, s FROM f WHERE r = 'west'
		SPREADSHEET DBY(p, t) MEA(s) UPDATE
		( F1: s[*,2002] = avg(s)[cv(p), t in (1998,2000)],
		  F2: s[*,2001] = avg(s)[cv(p), t in (1999,1997)] )
		ORDER BY p, t`
	base, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.Parallel = 4
	cfg.PromoteIndependentDims = true
	db.Configure(cfg)
	promoted, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != len(promoted.Rows) {
		t.Fatalf("rows: %d vs %d", len(base.Rows), len(promoted.Rows))
	}
	for i := range base.Rows {
		for j := range base.Rows[i] {
			if base.Rows[i][j].String() != promoted.Rows[i][j].String() {
				t.Fatalf("promotion changed results at row %d: %v vs %v", i, base.Rows[i], promoted.Rows[i])
			}
		}
	}
	// The plan should note the promotion.
	explain, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "promoted independent dimension") {
		t.Errorf("promotion note missing:\n%s", explain)
	}
}

func TestS4UpsertWithPromotion(t *testing.T) {
	// UPSERT formulas must not create spurious rows when a dimension is
	// promoted (the paper's PE trigger-condition scenario).
	db := newFactDB(t)
	q := `SELECT p, t, s FROM f WHERE r = 'west'
		SPREADSHEET DBY(p, t) MEA(s)
		( F1: UPSERT s['dvd', 2005] = 1,
		  F2: UPSERT s['vcr', 2005] = 2,
		  F3: s[*, 2003] = s[cv(p), 2002] * 1.2 )
		ORDER BY p, t`
	base, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.Parallel = 4
	cfg.PromoteIndependentDims = true
	db.Configure(cfg)
	promoted, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != len(promoted.Rows) {
		t.Fatalf("spurious rows under promotion: %d vs %d", len(base.Rows), len(promoted.Rows))
	}
}
