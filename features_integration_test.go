package sqlsheet_test

import (
	"strings"
	"testing"

	"sqlsheet"
)

func TestReturnUpdatedRowsSQL(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`
		SELECT r, p, t, s FROM f
		SPREADSHEET RETURN UPDATED ROWS PBY(r) DBY (p, t) MEA (s)
		(
		  s['dvd', 2002] = s['dvd', 2001] * 2,
		  UPSERT s['video', 2002] = 1
		)`)
	if err != nil {
		t.Fatal(err)
	}
	// Two partitions × two touched cells.
	if len(res.Rows) != 4 {
		t.Fatalf("RETURN UPDATED ROWS kept %d rows: %v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if p := row[1].String(); p != "dvd" && p != "video" {
			t.Errorf("unexpected row: %v", row)
		}
		if row[2].Int() != 2002 {
			t.Errorf("unexpected year: %v", row)
		}
	}
}

func TestForFromToSQL(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE cal (d INT, v FLOAT)`)
	db.MustExec(`INSERT INTO cal VALUES (0, 100)`)
	res, err := db.Query(`
		SELECT d, v FROM cal
		SPREADSHEET DBY (d) MEA (v) IGNORE NAV
		(
		  UPSERT v[FOR d FROM 1 TO 5] = 0,
		  UPDATE v[d > 0] ORDER BY d ASC = v[cv(d)-1] * 1.1
		)
		ORDER BY d`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Compounding: v[5] = 100 * 1.1^5.
	got := res.Rows[5][1].Float()
	want := 100 * 1.1 * 1.1 * 1.1 * 1.1 * 1.1
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("v[5] = %v, want %v", got, want)
	}
}

func TestUniqueDimensionSQL(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE t (x INT, s FLOAT)`)
	db.MustExec(`INSERT INTO t VALUES (1, 1), (1, 2)`)
	_, err := db.Query(`SELECT x, s FROM t SPREADSHEET DBY (x) MEA (s) ( s[1] = 0 )`)
	if err == nil || !strings.Contains(err.Error(), "uniquely identify") {
		t.Fatalf("duplicate dimension error missing: %v", err)
	}
	// GROUP BY restores uniqueness.
	res, err := db.Query(`SELECT x, s FROM t GROUP BY x SPREADSHEET DBY (x) MEA (sum(s) s) ( s[2] = s[1] + 10 )`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[1][1].Float() != 13 {
		t.Errorf("grouped = %v", res.Rows)
	}
}

func TestModelKeywordAlias(t *testing.T) {
	db := newFactDB(t)
	res, err := db.Query(`
		SELECT r, p, t, s FROM f
		MODEL RETURN UPDATED ROWS PARTITION BY (r) DIMENSION BY (p, t) MEASURES (s)
		RULES UPDATE
		( s['dvd', 2002] = 99 )`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][3].Float() != 99 {
		t.Errorf("MODEL alias broken: %v", res.Rows)
	}
}

func TestBTreeIndexMatchesHash(t *testing.T) {
	db := newFactDB(t)
	q := `SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( s[*, 2003] = s[cv(p), 2002] * 1.5,
		  UPSERT s['video', 2003] = s['tv', 2003] + s['vcr', 2003] )
		ORDER BY r, p, t`
	hash, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Options()
	cfg.UseBTreeIndex = true
	db.Configure(cfg)
	bt, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(hash, bt) {
		t.Fatal("B-tree access path changed results")
	}
}

func TestDeleteAndUpdateDML(t *testing.T) {
	db := sqlsheet.Open()
	db.MustExec(`CREATE TABLE t (a INT, b TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z'),(4,'w')`)
	res := db.MustExec(`UPDATE t SET b = 'upd', a = a * 10 WHERE a >= 3`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("update count = %v", res.Rows[0][0])
	}
	out, err := db.Query(`SELECT a, b FROM t WHERE b = 'upd' ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || out.Rows[0][0].Int() != 30 || out.Rows[1][0].Int() != 40 {
		t.Fatalf("updated rows = %v", out.Rows)
	}
	res = db.MustExec(`DELETE FROM t WHERE a > 15`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("delete count = %v", res.Rows[0][0])
	}
	out, _ = db.Query(`SELECT COUNT(*) FROM t`)
	if out.Rows[0][0].Int() != 2 {
		t.Fatalf("remaining = %v", out.Rows[0][0])
	}
	res = db.MustExec(`DELETE FROM t`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("delete-all count = %v", res.Rows[0][0])
	}
	// Errors.
	if _, err := db.Exec(`UPDATE t SET nope = 1`); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := db.Exec(`DELETE FROM missing`); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestDeleteForcesFullMVRefresh(t *testing.T) {
	db := newFactDB(t)
	db.MustExec(`CREATE MATERIALIZED VIEW dm AS
		SELECT r, p, t, s FROM f
		SPREADSHEET PBY(r) DBY (p, t) MEA (s)
		( UPSERT s['video', 2002] = s['tv', 2002] + s['vcr', 2002] )`)
	db.MustExec(`DELETE FROM f WHERE r = 'east' AND t < 1995`)
	rr := db.MustExec(`REFRESH dm`)
	if rr.Rows[0][0].String() != "full" {
		t.Fatalf("shrunk source must force full refresh, got %v", rr.Rows[0])
	}
	// DML against the MV itself is rejected.
	if _, err := db.Exec(`DELETE FROM dm`); err == nil {
		t.Error("DML on a materialized view must fail")
	}
	if _, err := db.Exec(`UPDATE dm SET s = 0`); err == nil {
		t.Error("UPDATE on a materialized view must fail")
	}
}
