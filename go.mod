module sqlsheet

go 1.22
